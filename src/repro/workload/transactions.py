"""Runtime transaction state.

A :class:`Request` is one in-flight benchmark operation.  Its CPU
demand and I/O plan are drawn once at creation (jittered around the
:class:`~repro.config.TransactionSpec`); the SUT's scheduler then
advances it tick by tick.  I/O points are expressed as CPU-progress
thresholds: when the request's consumed CPU crosses the next threshold
it suspends into the disk queue (a DB2 buffer-pool miss).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.config import TransactionSpec

#: Above this rate the sampler switches from Knuth's product form to
#: the equivalent log-space sum.  The product form underflows once
#: ``exp(-lam)`` reaches the subnormal range (lam ~ 745), at which
#: point it returns a lam-*independent* count (~700, wherever the
#: running product hits 0.0); well before that the comparison loses
#: precision.  30 keeps the historical bit-exact draws for every rate
#: the shipped configs produce while staying far from the cliff.
_KNUTH_LAMBDA_MAX = 30.0


def poisson(rng: random.Random, lam: float) -> int:
    """Poisson sampler, exact for small and large rates.

    Small ``lam`` uses Knuth's product method (bit-compatible with the
    historical draws).  Large ``lam`` counts unit-rate exponential
    inter-arrivals in log space — mathematically the same test
    (``prod(u_i) <= exp(-lam)``  iff  ``sum(-log(u_i)) >= lam``) but
    immune to the underflow that made high-IR scaling configs draw
    garbage.
    """
    if lam <= 0.0:
        return 0
    if lam <= _KNUTH_LAMBDA_MAX:
        threshold = pow(2.718281828459045, -lam)
        k = 0
        p = 1.0
        while True:
            p *= rng.random()
            if p <= threshold:
                return k
            k += 1
    # 1 - u maps random()'s [0, 1) onto (0, 1] so log() is total.
    k = 0
    total = -math.log(1.0 - rng.random())
    while total <= lam:
        k += 1
        total -= math.log(1.0 - rng.random())
    return k


class Request:
    """One in-flight transaction."""

    __slots__ = (
        "type_index",
        "spec",
        "arrival_s",
        "total_cpu_ms",
        "consumed_cpu_ms",
        "io_thresholds",
        "next_io",
        "in_io",
        "attempt",
        "abandoned",
        "finished",
    )

    def __init__(
        self,
        type_index: int,
        spec: TransactionSpec,
        arrival_s: float,
        rng: random.Random,
        io_count: int,
        cpu_inflation: float = 1.0,
    ):
        self.type_index = type_index
        self.spec = spec
        self.arrival_s = arrival_s
        self.total_cpu_ms = spec.total_cpu_ms * rng.uniform(0.7, 1.35)
        if cpu_inflation != 1.0:
            # A fault (e.g. DB slowdown) inflating this request's CPU
            # demand; applied before I/O placement so the I/O points
            # stay proportional.
            self.total_cpu_ms *= cpu_inflation
        self.consumed_cpu_ms = 0.0
        # I/O points spread uniformly over the request's CPU progress.
        points = sorted(rng.random() for _ in range(io_count))
        self.io_thresholds: List[float] = [p * self.total_cpu_ms for p in points]
        self.next_io = 0
        self.in_io = False
        #: Client attempt number (1 = first try; >1 = a retry).
        self.attempt = 1
        #: The client gave up on this request (timeout / crash); the
        #: server may still finish it as wasted zombie work.
        self.abandoned = False
        #: The server completed this request.
        self.finished = False

    @property
    def remaining_cpu_ms(self) -> float:
        return max(0.0, self.total_cpu_ms - self.consumed_cpu_ms)

    @property
    def done(self) -> bool:
        return (
            self.consumed_cpu_ms >= self.total_cpu_ms
            and self.next_io >= len(self.io_thresholds)
            and not self.in_io
        )

    def cpu_until_next_io(self) -> Optional[float]:
        """CPU ms this request may consume before its next I/O point.

        Returns None if no I/O points remain.
        """
        if self.next_io >= len(self.io_thresholds):
            return None
        return max(0.0, self.io_thresholds[self.next_io] - self.consumed_cpu_ms)

    def consume(self, cpu_ms: float) -> bool:
        """Advance by ``cpu_ms``; returns True if an I/O point was hit."""
        if self.in_io:
            raise RuntimeError("request is waiting on I/O")
        if cpu_ms < 0:
            raise ValueError("cannot consume negative CPU")
        budget = self.cpu_until_next_io()
        if budget is not None and cpu_ms >= budget:
            self.consumed_cpu_ms += budget
            self.next_io += 1
            self.in_io = True
            return True
        self.consumed_cpu_ms += cpu_ms
        return False

    def io_complete(self) -> None:
        if not self.in_io:
            raise RuntimeError("request was not waiting on I/O")
        self.in_io = False

    def response_time_s(self, now_s: float) -> float:
        return now_s - self.arrival_s
