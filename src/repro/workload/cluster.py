"""Future work (Section 7): the SUT as a cluster of blades.

"Another direction is to analyze the jas2004 workload on relatively
inexpensive blade systems and to place a web server, an application
server and a DBMS onto a cluster of interconnected blades."

This module deploys the same workload across three tiers on separate
nodes instead of one shared box:

* a **web blade** runs the web server's CPU demand,
* one or more **app blades** run the WAS demand (JITed + non-JITed)
  plus the JVM heap/GC (each app blade collects independently),
* a **db blade** runs the DB2 demand and owns the disks.

Requests hop web -> app -> db and back; each hop adds interconnect
latency, and each tier is its own processor-sharing queue.  Kernel
demand lands on whichever tier does the work.  The single-server
deployment the paper uses folds all tiers onto one node — which is why
it is "considerably easier to manage and tends to deliver excellent
performance" (no network hops, shared capacity).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import ExperimentConfig, TransactionSpec
from repro.jvm.gc import GcEvent, MarkSweepCompactCollector
from repro.jvm.heap import FlatHeap
from repro.obs import runtime as _obs
from repro.util.rng import RngFactory
from repro.util.stats import percentile
from repro.util.units import KB, MB
from repro.workload.disk import DiskModel
from repro.workload.driver import Driver
from repro.workload.faults import NO_FAULTS, FaultSchedule

#: One-way interconnect latency per hop between blades.
HOP_LATENCY_MS = 0.4


@dataclass(frozen=True)
class ClusterLayout:
    """How many cores each tier's blades contribute."""

    web_cores: int = 1
    app_blades: int = 2
    app_cores_per_blade: int = 2
    db_cores: int = 1

    @property
    def total_cores(self) -> int:
        return (
            self.web_cores
            + self.app_blades * self.app_cores_per_blade
            + self.db_cores
        )


class _Job:
    """One transaction flowing through the tier pipeline."""

    __slots__ = (
        "type_index",
        "arrival_s",
        "stage",
        "remaining_ms",
        "app_blade",
        "extra_latency_s",
        "demands",
    )

    STAGES = ("web_in", "app_in", "db", "app_out", "web_out")

    def __init__(self, type_index, arrival_s, demands, app_blade, extra_latency_s):
        self.type_index = type_index
        self.arrival_s = arrival_s
        self.demands = demands  # per-stage CPU ms
        self.stage = 0
        self.remaining_ms = demands[0]
        self.app_blade = app_blade
        self.extra_latency_s = extra_latency_s

    def advance_stage(self) -> bool:
        """Move to the next stage; returns True when finished."""
        self.stage += 1
        if self.stage >= len(self.STAGES):
            return True
        self.remaining_ms = self.demands[self.stage]
        return False

    def tier(self) -> Tuple[str, int]:
        name = self.STAGES[self.stage]
        if name.startswith("web"):
            return ("web", 0)
        if name.startswith("app"):
            return ("app", self.app_blade)
        return ("db", 0)


class _TierQueue:
    """A processor-sharing queue for one blade."""

    def __init__(self, cores: int, tick_ms: float):
        self.capacity_ms = cores * tick_ms
        self.jobs: List[_Job] = []
        self.busy_ms = 0.0
        self.ticks = 0

    def serve(self, pause_fraction: float = 0.0) -> List[_Job]:
        """One tick of processor sharing; returns stage-finished jobs."""
        self.ticks += 1
        budget = self.capacity_ms * (1.0 - pause_fraction)
        finished: List[_Job] = []
        while budget > 1e-9 and self.jobs:
            share = budget / len(self.jobs)
            still: List[_Job] = []
            consumed = 0.0
            for job in self.jobs:
                want = min(share, job.remaining_ms)
                job.remaining_ms -= want
                consumed += want
                if job.remaining_ms <= 1e-9:
                    finished.append(job)
                else:
                    still.append(job)
            self.jobs = still
            self.busy_ms += consumed
            budget -= consumed
            if consumed <= 1e-12:
                break
        return finished

    @property
    def utilization(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.busy_ms / (self.capacity_ms * self.ticks)


@dataclass
class ClusterRunResult:
    """Summary of a cluster deployment run."""

    layout: ClusterLayout
    jops: float
    p90_web_s: Optional[float]
    passed: bool
    tier_utilization: Dict[str, float]
    bottleneck_tier: str
    gc_events_per_blade: List[int]
    response_samples: List[float] = field(repr=False, default_factory=list)
    #: Jobs lost to faults: crashed blades, interconnect drops, or
    #: arrivals with no live app blade to land on.
    failed_jobs: int = 0


class ClusterSUT:
    """The three-tier deployment of a workload configuration."""

    def __init__(
        self,
        config: ExperimentConfig,
        layout: Optional[ClusterLayout] = None,
        rng_factory: Optional[RngFactory] = None,
    ):
        self.config = config
        self.layout = layout if layout is not None else ClusterLayout()
        self.rngs = (
            rng_factory if rng_factory is not None else RngFactory(config.seed)
        )

    # ------------------------------------------------------------------
    def _stage_demands(self, spec: TransactionSpec, jitter: float) -> List[float]:
        """Split a spec's CPU demand across the five pipeline stages.

        Kernel time follows the work: half to the app tier, and a
        quarter each to web and db (network and I/O handling).
        """
        kernel = spec.cpu_ms.get("kernel", 0.0)
        web = spec.cpu_ms.get("web", 0.0) + 0.25 * kernel
        app = (
            spec.cpu_ms.get("was_jited", 0.0)
            + spec.cpu_ms.get("was_nonjited", 0.0)
            + 0.5 * kernel
        )
        db = spec.cpu_ms.get("db2", 0.0) + 0.25 * kernel
        return [
            0.5 * web * jitter,
            0.55 * app * jitter,
            db * jitter,
            0.45 * app * jitter,
            0.5 * web * jitter,
        ]

    def run(self) -> ClusterRunResult:
        cfg = self.config.workload
        jvm = self.config.jvm
        layout = self.layout
        tick_s = cfg.tick_s
        tick_ms = tick_s * 1000.0

        driver = Driver(cfg, self.rngs.stream("cluster.arrivals"))
        job_rng = self.rngs.stream("cluster.jobs")
        disk = DiskModel(cfg.disk, tick_s)
        schedule = FaultSchedule(self.config.faults.events)
        fault_rng = (
            self.rngs.stream("cluster.faults") if schedule.active else None
        )
        failed_jobs = 0
        prev_down: frozenset = frozenset()

        tiers: Dict[Tuple[str, int], _TierQueue] = {
            ("web", 0): _TierQueue(layout.web_cores, tick_ms),
            ("db", 0): _TierQueue(layout.db_cores, tick_ms),
        }
        for blade in range(layout.app_blades):
            tiers[("app", blade)] = _TierQueue(
                layout.app_cores_per_blade, tick_ms
            )

        # Each app blade gets its own heap/collector, sized as a share
        # of the single-server heap.
        heaps = [
            FlatHeap(
                dataclasses.replace(
                    jvm, heap_mb=max(128, jvm.heap_mb // layout.app_blades)
                )
            )
            for _ in range(layout.app_blades)
        ]
        collectors = [
            MarkSweepCompactCollector(jvm.gc, self.rngs.stream(f"cluster.gc{i}"))
            for i in range(layout.app_blades)
        ]
        gc_remaining_ms = [0.0] * layout.app_blades
        gc_counts = [0] * layout.app_blades
        live_share = jvm.live_set_mb * MB / layout.app_blades
        # Mean allocation per millisecond of app-tier CPU, blended over
        # the transaction mix.
        total_alloc = sum(s_.share * s_.alloc_kb * KB for s_ in cfg.transactions)
        total_app_ms = sum(
            s_.share
            * (self._stage_demands(s_, 1.0)[1] + self._stage_demands(s_, 1.0)[3])
            for s_ in cfg.transactions
        )
        alloc_per_app_ms = total_alloc / max(1e-9, total_app_ms)
        prev_busy = [0.0] * layout.app_blades

        responses: List[Tuple[float, float, int]] = []
        n_ticks = int(round(cfg.duration_s / tick_s))
        rr_blade = 0

        for tick_index in range(n_ticks):
            now = tick_index * tick_s

            # Faults in force: downed app blades, interconnect trouble.
            mods = schedule.modifiers_at(now) if schedule.active else NO_FAULTS
            if mods.server_down:
                blades_down = frozenset(range(layout.app_blades))
            else:
                blades_down = mods.blades_down
            for blade in blades_down - prev_down:
                # Crash edge: the blade's queued work is lost.
                if ("app", blade) in tiers:
                    failed_jobs += len(tiers[("app", blade)].jobs)
                    tiers[("app", blade)].jobs = []
            prev_down = blades_down
            live_blades = [
                b for b in range(layout.app_blades) if b not in blades_down
            ]

            # Arrivals (round-robin across live app blades).
            for type_index, count in enumerate(driver.arrivals(now)):
                spec = cfg.transactions[type_index]
                for _ in range(count):
                    if not live_blades:
                        failed_jobs += 1
                        continue
                    if mods.net_loss_p and fault_rng.random() < mods.net_loss_p:
                        failed_jobs += 1
                        continue
                    jitter = job_rng.uniform(0.7, 1.35)
                    hops = 4 if spec.protocol == "web" else 2
                    extra = hops * HOP_LATENCY_MS / 1000.0
                    if mods.hop_latency_factor != 1.0:
                        extra *= mods.hop_latency_factor
                    demands = self._stage_demands(spec, jitter)
                    if mods.db_cpu_factor != 1.0:
                        demands[2] *= mods.db_cpu_factor
                    if rr_blade not in live_blades:
                        rr_blade = live_blades[0]
                    job = _Job(
                        type_index,
                        now,
                        demands,
                        rr_blade,
                        extra,
                    )
                    rr_blade = (rr_blade + 1) % layout.app_blades
                    tiers[("web", 0)].jobs.append(job)

            # GC per app blade.
            pause_fraction = [0.0] * layout.app_blades
            for blade in range(layout.app_blades):
                gc_ms = min(tick_ms, gc_remaining_ms[blade])
                gc_remaining_ms[blade] -= gc_ms
                pause_fraction[blade] = gc_ms / tick_ms

            # Serve every tier (a downed blade serves nothing).
            for key, queue in tiers.items():
                tier_name, blade = key
                if tier_name == "app" and blade in blades_down:
                    continue
                pause = (
                    pause_fraction[blade] if tier_name == "app" else 0.0
                )
                for job in queue.serve(pause):
                    done = job.advance_stage()
                    if done:
                        rt = (now + tick_s) - job.arrival_s + job.extra_latency_s
                        responses.append((now + tick_s, rt, job.type_index))
                    elif job.tier()[0] == "app" and job.app_blade in blades_down:
                        # Routed into a crashed blade: the hop fails.
                        failed_jobs += 1
                    else:
                        tiers[job.tier()].jobs.append(job)

            # Allocation and GC triggering per app blade: allocation
            # tracks the app-tier CPU actually consumed this tick.
            for blade in range(layout.app_blades):
                queue = tiers[("app", blade)]
                heap = heaps[blade]
                max_live = heap.capacity_bytes - heap.dark_matter_bytes - 24 * MB
                desired = int(live_share) + len(queue.jobs) * 256 * KB
                if mods.live_extra_bytes:
                    desired += mods.live_extra_bytes // layout.app_blades
                heap.set_live(min(max_live, desired))
                consumed_ms = queue.busy_ms - prev_busy[blade]
                prev_busy[blade] = queue.busy_ms
                alloc = int(consumed_ms * alloc_per_app_ms)
                needs_gc = heap.allocate(alloc) if alloc else False
                if needs_gc and gc_remaining_ms[blade] <= 0.0:
                    event: GcEvent = collectors[blade].collect(heap, now)
                    gc_remaining_ms[blade] = event.pause_ms
                    gc_counts[blade] += 1

            disk.tick()

        # Metrics over the steady window.
        t0 = cfg.ramp_up_s
        t1 = cfg.duration_s - cfg.ramp_down_s
        steady = [(t, rt, k) for t, rt, k in responses if t0 <= t < t1]
        jops = len(steady) / max(1e-9, t1 - t0)
        web_rts = [
            rt
            for _, rt, k in steady
            if cfg.transactions[k].protocol == "web"
        ]
        p90 = percentile(web_rts, 90.0) if web_rts else None
        passed = bool(
            steady and (p90 is None or p90 <= cfg.requirements.web_deadline_s)
        )
        utilization = {
            "web": tiers[("web", 0)].utilization,
            "app": sum(
                tiers[("app", b)].utilization for b in range(layout.app_blades)
            )
            / layout.app_blades,
            "db": tiers[("db", 0)].utilization,
        }
        bottleneck = max(utilization, key=utilization.get)
        obs = _obs._ACTIVE
        if obs is not None:
            # Read-only fold of the finished run; the science above is
            # already computed.
            metrics = obs.metrics
            metrics.counter("cluster.runs").inc()
            metrics.counter("cluster.jobs.completed").inc(len(responses))
            metrics.counter("cluster.jobs.failed").inc(failed_jobs)
            for tier_name, value in utilization.items():
                metrics.gauge(
                    "cluster.tier.utilization", {"tier": tier_name}
                ).set(value)
            for blade, count in enumerate(gc_counts):
                metrics.counter(
                    "cluster.gc.collections", {"blade": blade}
                ).inc(count)
        return ClusterRunResult(
            layout=self.layout,
            jops=jops,
            p90_web_s=p90,
            passed=passed,
            tier_utilization=utilization,
            bottleneck_tier=bottleneck,
            gc_events_per_blade=gc_counts,
            response_samples=[rt for _, rt, _ in steady[:5000]],
            failed_jobs=failed_jobs,
        )
