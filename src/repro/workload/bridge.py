"""The workload-to-microarchitecture bridge.

:class:`WorkloadPhaseSchedule` turns a finished workload run into the
:class:`~repro.cpu.core_model.PhaseSchedule` the CPU model samples: each
hpmstat window maps onto one (or a stride of) timeline tick(s), and the
tick's accounting becomes the window's phase composition:

* software-component CPU shares become mutator profile slices, with
  per-window :class:`~repro.jvm.runtime.MutatorIntensity` blended from
  the transaction types actually running in that tick;
* GC CPU time becomes mark/sweep slices (>80% mark, like the measured
  pauses);
* kernel time is *excluded by default* because the paper's HPM data
  "correspond to user-level processes only"; pass
  ``include_kernel=True`` for the privileged-code experiments
  (Section 4.2.4's ~7% SYNC-in-SRQ figure);
* idle time is likewise excluded — an idle CPU runs no user process.
  Fully idle ticks fall back to the idle-loop profile, which is how
  the "idle system CPI ~0.7" observation is measured.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.core_model import PhaseSchedule  # noqa: F401  (protocol reference)
from repro.cpu.phases import (
    PhaseDescriptor,
    PhaseProfile,
    gc_mark_profile,
    gc_sweep_profile,
    idle_profile,
    interpreter_profile,
    kernel_profile,
)
from repro.cpu.regions import AddressSpace
from repro.jvm.methods import MethodRegistry
from repro.jvm.runtime import MutatorIntensity, mutator_profiles
from repro.util.rng import RngFactory
from repro.workload.sut import RunResult
from repro.workload.timeline import COMPONENTS

#: Share of a GC pause spent marking (the paper: >80%).
GC_MARK_SHARE = 0.82


class WorkloadPhaseSchedule:
    """Phase descriptors derived from a workload run's timeline."""

    def __init__(
        self,
        result: RunResult,
        registry: MethodRegistry,
        space: AddressSpace,
        rng_factory: RngFactory,
        start_time_s: Optional[float] = None,
        stride_ticks: int = 1,
        include_kernel: bool = False,
        jit=None,
    ):
        self.result = result
        self.registry = registry
        self.space = space
        self.include_kernel = include_kernel
        #: Optional JIT timeline: when provided, the not-yet-compiled
        #: share of the would-be-JITed execution runs the interpreter
        #: profile instead (the early-run dynamic behind the paper's
        #: "profile the last five minutes" methodology).
        self.jit = jit
        self._rng = rng_factory.stream("bridge.phases")
        build_rng = rng_factory.stream("bridge.pools")
        self._gc_mark = gc_mark_profile(build_rng, space)
        self._gc_sweep = gc_sweep_profile(build_rng, space)
        self._kernel = kernel_profile(build_rng, space)
        self._idle = idle_profile(build_rng, space)
        self._interpreter = interpreter_profile(build_rng, space)

        timeline = result.timeline
        if start_time_s is None:
            start_time_s, _ = result.steady_window()
        self._start_tick = int(round(start_time_s / timeline.tick_s))
        if stride_ticks < 1:
            raise ValueError("stride must be >= 1")
        self._stride = stride_ticks
        self._specs = result.config.workload.transactions
        self._intensities = [
            MutatorIntensity(
                stream=spec.stream_intensity,
                cold=spec.cold_intensity,
                lock=spec.lock_intensity,
                shared=spec.shared_intensity,
            )
            for spec in self._specs
        ]
        self._component_index = {name: i for i, name in enumerate(COMPONENTS)}

    # ------------------------------------------------------------------
    def window_for_tick(self, tick: int) -> int:
        """The window index that maps onto timeline tick ``tick``."""
        return (tick - self._start_tick) // self._stride

    def gc_window_indices(self, max_events: Optional[int] = None) -> list:
        """Window indices landing inside steady-state GC pauses.

        Each GC event contributes the windows its pause covers, so
        experiments can sample guaranteed-GC windows without scanning.
        """
        timeline = self.result.timeline
        t0, t1 = self.result.steady_window()
        indices = []
        events = [
            e for e in self.result.gc_events if t0 <= e.start_time_s < t1
        ]
        if max_events is not None:
            events = events[:max_events]
        for event in events:
            first_tick = int(event.start_time_s / timeline.tick_s) + 1
            last_tick = int(
                (event.start_time_s + event.pause_ms / 1000.0) / timeline.tick_s
            )
            for tick in range(first_tick, last_tick + 1):
                idx = self.window_for_tick(tick)
                if idx >= 0:
                    indices.append(idx)
        return indices

    def tick_for_window(self, window_index: int) -> int:
        tick = self._start_tick + window_index * self._stride
        n = len(self.result.timeline.records)
        if tick >= n:
            # Wrap within the steady region rather than fall off the run.
            t0, t1 = self.result.steady_window()
            lo = int(round(t0 / self.result.timeline.tick_s))
            hi = max(lo + 1, int(round(t1 / self.result.timeline.tick_s)))
            tick = lo + (tick - lo) % (hi - lo)
        return tick

    def descriptor_for(self, window_index: int) -> PhaseDescriptor:
        record = self.result.timeline.records[self.tick_for_window(window_index)]

        intensity = MutatorIntensity.blend(
            zip(self._intensities, record.cpu_ms_by_type)
        )
        profiles = mutator_profiles(
            self.registry,
            self.space,
            self._rng,
            intensity,
            devirtualize_fraction=self.result.config.jvm.devirtualize_fraction,
            churn_segregated=self.result.config.jvm.churn_segregated,
        )

        compiled = 1.0
        if self.jit is not None:
            tick = self.tick_for_window(window_index)
            now_s = tick * self.result.timeline.tick_s
            compiled = self.jit.compiled_weight_fraction(now_s)

        weights = []
        for name in ("web", "was_jited", "was_nonjited", "db2"):
            ms = record.cpu_ms_by_component[self._component_index[name]]
            if ms <= 0:
                continue
            if name == "was_jited" and compiled < 1.0:
                # The interpreter runs ~5x more instructions per unit
                # of work, but the timeline already accounts wall-clock
                # CPU; here only the *character* of the code changes.
                weights.append((profiles[name], ms * compiled))
                interp_ms = ms * (1.0 - compiled)
                if interp_ms > 0:
                    weights.append((self._interpreter, interp_ms))
            else:
                weights.append((profiles[name], ms))
        if self.include_kernel:
            kernel_ms = record.cpu_ms_by_component[self._component_index["kernel"]]
            if kernel_ms > 0:
                weights.append((self._kernel, kernel_ms))
        if record.gc_ms > 0:
            weights.append((self._gc_mark, record.gc_ms * GC_MARK_SHARE))
            weights.append((self._gc_sweep, record.gc_ms * (1.0 - GC_MARK_SHARE)))

        total = sum(w for _, w in weights)
        if total <= 0.0:
            return PhaseDescriptor(
                slices=((self._idle, 1.0),), gc_fraction=0.0, label="idle"
            )
        gc_fraction = record.gc_ms / total
        slices = tuple((profile, w / total) for profile, w in weights)
        label = "gc" if gc_fraction > 0.5 else "mutator"
        return PhaseDescriptor(slices=slices, gc_fraction=gc_fraction, label=label)


class UniformPhaseSchedule:
    """A schedule with a fixed mutator composition (no workload run).

    Useful for calibration experiments and unit tests where the
    variance of a real run would get in the way.
    """

    def __init__(
        self,
        registry: MethodRegistry,
        space: AddressSpace,
        rng_factory: RngFactory,
        component_shares: Optional[dict] = None,
        intensity: MutatorIntensity = MutatorIntensity(),
    ):
        self.registry = registry
        self.space = space
        self._rng = rng_factory.stream("bridge.phases")
        self.intensity = intensity
        self.component_shares = component_shares or {
            "was_jited": 0.34,
            "was_nonjited": 0.32,
            "web": 0.11,
            "db2": 0.23,
        }

    def descriptor_for(self, window_index: int) -> PhaseDescriptor:
        profiles = mutator_profiles(
            self.registry, self.space, self._rng, self.intensity
        )
        total = sum(self.component_shares.values())
        slices = tuple(
            (profiles[name], share / total)
            for name, share in self.component_shares.items()
            if share > 0
        )
        return PhaseDescriptor(slices=slices, label="uniform")
