"""The System Under Test: the complete tick-driven simulation.

One :class:`SystemUnderTest` binds the driver, web server, application
server, database, disks, heap and collector, advances them on a fixed
0.1 s tick, and produces a :class:`RunResult` with the full timeline,
the GC event log, and every response-time sample.

Stop-the-world collections suspend mutator service: while a pause is
draining, the tick's CPU capacity goes to the collector and admitted
requests wait — which is how GC pauses show up in response times
without any special-casing in the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import ExperimentConfig
from repro.jvm.gc import GcEvent, MarkSweepCompactCollector
from repro.jvm.heap import FlatHeap
from repro.util.rng import RngFactory
from repro.util.units import KB, MB
from repro.workload.appserver import AppServer
from repro.workload.database import Database
from repro.workload.disk import DiskModel
from repro.workload.driver import Driver
from repro.workload.timeline import COMPONENTS, RunTimeline, TickRecord
from repro.workload.transactions import Request
from repro.workload.webserver import WebServer

#: Seconds for the live set to ramp to its steady-state size (session
#: state accumulation and cache warm-up).
LIVE_RAMP_S = 180.0
#: Fraction of the steady live set present at t=0 (preloaded data).
LIVE_FLOOR = 0.30
#: Transient live bytes per in-flight request.
LIVE_PER_REQUEST = 256 * KB


@dataclass
class RunResult:
    """Everything a benchmark run produced."""

    config: ExperimentConfig
    timeline: RunTimeline
    gc_events: List[GcEvent]
    #: Per transaction type: list of (completion time, response seconds).
    responses: List[List[Tuple[float, float]]]
    #: Per transaction type: operations rejected by admission control.
    rejected: List[int]
    db_hit_ratio: float
    disk_utilization: float
    disk_mean_queue: float
    final_heap_used: int
    final_dark_matter: int

    def steady_window(self) -> Tuple[float, float]:
        """The (start, end) of the steady-state measurement window."""
        cfg = self.config.workload
        return cfg.ramp_up_s, cfg.duration_s - cfg.ramp_down_s

    def steady_responses(self, type_index: int) -> List[float]:
        t0, t1 = self.steady_window()
        return [rt for t, rt in self.responses[type_index] if t0 <= t < t1]


class SystemUnderTest:
    """Runs the whole benchmark."""

    def __init__(self, config: ExperimentConfig, rng_factory: RngFactory = None):
        self.config = config
        self.rngs = rng_factory if rng_factory is not None else RngFactory(config.seed)

    def run(self) -> RunResult:
        cfg = self.config.workload
        jvm = self.config.jvm
        n_cores = self.config.machine.topology.n_cores
        tick_s = cfg.tick_s
        tick_ms = tick_s * 1000.0
        capacity_ms = n_cores * tick_ms

        driver = Driver(cfg, self.rngs.stream("workload.arrivals"))
        webserver = WebServer(self.rngs.stream("workload.web"))
        appserver = AppServer(cfg, n_cores)
        database = Database(cfg, self.rngs.stream("workload.db"))
        disk = DiskModel(cfg.disk, tick_s)
        heap = FlatHeap(jvm)
        collector = MarkSweepCompactCollector(jvm.gc, self.rngs.stream("jvm.gc"))
        request_rng = self.rngs.stream("workload.requests")

        specs = cfg.transactions
        alloc_per_cpu_ms = [
            spec.alloc_kb * KB / spec.total_cpu_ms for spec in specs
        ]
        live_target = jvm.live_set_mb * MB

        timeline = RunTimeline(tick_s, [s.name for s in specs], n_cores)
        gc_events: List[GcEvent] = []
        responses: List[List[Tuple[float, float]]] = [[] for _ in specs]
        rejected: List[int] = [0 for _ in specs]

        n_ticks = int(round(cfg.duration_s / tick_s))
        gc_wall_remaining_ms = 0.0

        for tick_index in range(n_ticks):
            now = tick_index * tick_s

            # --- Arrivals -------------------------------------------------
            arrivals = driver.arrivals(now)
            for type_index, count in enumerate(arrivals):
                spec = specs[type_index]
                for _ in range(count):
                    if appserver.in_flight >= cfg.max_in_flight:
                        # Overloaded: shed load rather than grow without
                        # bound (connection refused / timeout upstream).
                        rejected[type_index] += 1
                        continue
                    webserver.route(spec)
                    io_count = database.plan_ios(spec)
                    appserver.admit(
                        Request(type_index, spec, now, request_rng, io_count)
                    )

            # --- Live-set evolution ----------------------------------------
            ramp = min(1.0, LIVE_FLOOR + (1.0 - LIVE_FLOOR) * now / LIVE_RAMP_S)
            desired_live = (
                int(live_target * ramp) + appserver.in_flight * LIVE_PER_REQUEST
            )
            # An undersized heap cannot hold the desired live set; the
            # application stalls allocations instead of growing, which
            # manifests as constant GC thrash (the untuned-system
            # behavior the tuning walk demonstrates).
            max_live = heap.capacity_bytes - heap.dark_matter_bytes - 24 * MB
            heap.set_live(max(0, min(desired_live, max_live)))

            # --- GC pause accounting ---------------------------------------
            gc_wall_ms = min(tick_ms, gc_wall_remaining_ms)
            gc_wall_remaining_ms -= gc_wall_ms
            gc_cpu_ms = capacity_ms * (gc_wall_ms / tick_ms)
            mutator_capacity = capacity_ms - gc_cpu_ms

            # --- Mutator service -------------------------------------------
            completed, io_submissions, by_component, by_type, used_ms = (
                appserver.serve(mutator_capacity)
                if mutator_capacity > 0
                else ([], [], [0.0] * len(COMPONENTS), [0.0] * len(specs), 0.0)
            )
            for request in io_submissions:
                disk.submit(request)

            # --- Allocation and GC triggering -------------------------------
            alloc_bytes = 0
            for type_index, cpu_ms in enumerate(by_type):
                alloc_bytes += int(cpu_ms * alloc_per_cpu_ms[type_index])
            needs_gc = heap.allocate(alloc_bytes) if alloc_bytes else False
            if needs_gc and gc_wall_remaining_ms <= 0.0:
                event = collector.collect(heap, now)
                gc_events.append(event)
                gc_wall_remaining_ms = event.pause_ms

            # --- Disk progress ----------------------------------------------
            for request in disk.tick():
                appserver.resume(request)

            # --- Completions -------------------------------------------------
            completions = [0] * len(specs)
            for request in completed:
                completions[request.type_index] += 1
                rt = request.response_time_s(now + tick_s)
                rt += webserver.response_overhead_s(request.spec)
                responses[request.type_index].append((now + tick_s, rt))

            idle_ms = max(0.0, capacity_ms - used_ms - gc_cpu_ms)
            timeline.append(
                TickRecord(
                    index=tick_index,
                    arrivals=tuple(arrivals),
                    completions=tuple(completions),
                    cpu_ms_by_component=tuple(by_component),
                    cpu_ms_by_type=tuple(by_type),
                    gc_ms=gc_cpu_ms,
                    idle_ms=idle_ms,
                    io_waiting=disk.queue_length,
                    heap_used_bytes=heap.used_bytes,
                    queue_length=appserver.in_flight,
                )
            )

        return RunResult(
            config=self.config,
            timeline=timeline,
            gc_events=gc_events,
            responses=responses,
            rejected=rejected,
            db_hit_ratio=database.observed_hit_ratio,
            disk_utilization=disk.utilization(n_ticks),
            disk_mean_queue=disk.mean_queue_length(n_ticks),
            final_heap_used=heap.used_bytes,
            final_dark_matter=heap.dark_matter_bytes,
        )
