"""The System Under Test: the complete tick-driven simulation.

One :class:`SystemUnderTest` binds the driver, web server, application
server, database, disks, heap and collector, advances them on a fixed
0.1 s tick, and produces a :class:`RunResult` with the full timeline,
the GC event log, and every response-time sample.

Stop-the-world collections suspend mutator service: while a pause is
draining, the tick's CPU capacity goes to the collector and admitted
requests wait — which is how GC pauses show up in response times
without any special-casing in the metrics.

Faults and resilience (:mod:`repro.workload.faults`) thread through
the same loop: a :class:`~repro.workload.faults.FaultSchedule` is
queried each tick for the modifiers in force (server crash, DB
slowdown, disk degradation, GC pressure), the driver replays abandoned
operations per the :class:`~repro.config.RetryPolicy`, and the app
server browns out low-priority arrivals per the
:class:`~repro.config.DegradationPolicy`.  With the default
:class:`~repro.config.FaultConfig` every hook is inert and the run is
bit-identical to the pre-fault simulator.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.config import ExperimentConfig
from repro.jvm.gc import GcEvent, MarkSweepCompactCollector
from repro.jvm.heap import FlatHeap
from repro.obs import runtime as _obs
from repro.obs.trace import WALL
from repro.util.rng import RngFactory
from repro.util.units import KB, MB
from repro.workload.appserver import AppServer
from repro.workload.database import Database
from repro.workload.disk import DiskModel
from repro.workload.driver import Driver
from repro.workload.faults import (
    NO_FAULTS,
    FaultSchedule,
    ResilienceStats,
    ResilienceTracker,
)
from repro.workload.timeline import COMPONENTS, RunTimeline, TickRecord
from repro.workload.transactions import Request
from repro.workload.webserver import WebServer

#: Seconds for the live set to ramp to its steady-state size (session
#: state accumulation and cache warm-up).
LIVE_RAMP_S = 180.0
#: Fraction of the steady live set present at t=0 (preloaded data).
LIVE_FLOOR = 0.30
#: Transient live bytes per in-flight request.
LIVE_PER_REQUEST = 256 * KB


@dataclass
class RunResult:
    """Everything a benchmark run produced."""

    config: ExperimentConfig
    timeline: RunTimeline
    gc_events: List[GcEvent]
    #: Per transaction type: list of (completion time, response seconds).
    responses: List[List[Tuple[float, float]]]
    #: Per transaction type: operations rejected by admission control.
    rejected: List[int]
    db_hit_ratio: float
    disk_utilization: float
    disk_mean_queue: float
    final_heap_used: int
    final_dark_matter: int
    #: Resilience counters (all zeros on a fault-free run).
    resilience: Optional[ResilienceStats] = field(default=None, repr=False)

    def steady_window(self) -> Tuple[float, float]:
        """The (start, end) of the steady-state measurement window."""
        cfg = self.config.workload
        return cfg.ramp_up_s, cfg.duration_s - cfg.ramp_down_s

    def steady_responses(self, type_index: int) -> List[float]:
        t0, t1 = self.steady_window()
        return [rt for t, rt in self.responses[type_index] if t0 <= t < t1]


class SystemUnderTest:
    """Runs the whole benchmark."""

    def __init__(
        self, config: ExperimentConfig, rng_factory: Optional[RngFactory] = None
    ):
        self.config = config
        self.rngs = rng_factory if rng_factory is not None else RngFactory(config.seed)

    def run(self) -> RunResult:
        cfg = self.config.workload
        jvm = self.config.jvm
        faults = self.config.faults
        n_cores = self.config.machine.topology.n_cores
        tick_s = cfg.tick_s
        tick_ms = tick_s * 1000.0
        capacity_ms = n_cores * tick_ms

        retry = faults.retry
        degradation = faults.degradation
        schedule = FaultSchedule(faults.events)
        resilience_active = faults.is_active
        resilience_rng = (
            self.rngs.stream("workload.resilience") if resilience_active else None
        )

        driver = Driver(
            cfg,
            self.rngs.stream("workload.arrivals"),
            retry_policy=retry,
            retry_rng=resilience_rng,
        )
        webserver = WebServer(self.rngs.stream("workload.web"))
        appserver = AppServer(cfg, n_cores)
        database = Database(cfg, self.rngs.stream("workload.db"))
        disk = DiskModel(cfg.disk, tick_s)
        heap = FlatHeap(jvm)
        collector = MarkSweepCompactCollector(jvm.gc, self.rngs.stream("jvm.gc"))
        request_rng = self.rngs.stream("workload.requests")

        specs = cfg.transactions
        alloc_per_cpu_ms = [
            spec.alloc_kb * KB / spec.total_cpu_ms for spec in specs
        ]
        # DB2's share of each spec's CPU: how much of a db_slowdown's
        # CPU factor lands on requests of that type.
        db_share = [
            spec.cpu_ms.get("db2", 0.0) / spec.total_cpu_ms for spec in specs
        ]
        live_target = jvm.live_set_mb * MB

        timeline = RunTimeline(tick_s, [s.name for s in specs], n_cores)
        gc_events: List[GcEvent] = []
        responses: List[List[Tuple[float, float]]] = [[] for _ in specs]
        rejected: List[int] = [0 for _ in specs]
        tracker = ResilienceTracker(len(specs))
        #: Per type: (client deadline, request), in admission order.
        watch: List[Deque[Tuple[float, Request]]] = [deque() for _ in specs]

        def client_failure(type_index: int, attempt: int, now: float) -> None:
            """An attempt failed client-side: back off and retry, or
            give the operation up for good."""
            if not driver.schedule_retry(type_index, attempt, now):
                tracker.failed[type_index] += 1

        def try_admit(type_index: int, attempt: int, now: float) -> None:
            spec = specs[type_index]
            if appserver.in_flight >= cfg.max_in_flight:
                # Overloaded: shed load rather than grow without
                # bound (connection refused / timeout upstream).
                rejected[type_index] += 1
                if resilience_active:
                    client_failure(type_index, attempt, now)
                return
            if degradation.enabled and appserver.should_shed(
                spec, degradation, resilience_rng
            ):
                # Brownout: refuse cheaply now so the client can back
                # off, instead of queueing work that will miss its
                # deadline anyway.
                tracker.shed[type_index] += 1
                client_failure(type_index, attempt, now)
                return
            webserver.route(spec)
            io_count = database.plan_ios(spec)
            inflation = 1.0
            if mods.db_cpu_factor != 1.0:
                inflation = 1.0 + (mods.db_cpu_factor - 1.0) * db_share[type_index]
            request = Request(
                type_index, spec, now, request_rng, io_count, inflation
            )
            request.attempt = attempt
            appserver.admit(request)
            if retry.enabled:
                watch[type_index].append(
                    (now + retry.timeout_s(spec.protocol), request)
                )

        n_ticks = int(round(cfg.duration_s / tick_s))
        gc_wall_remaining_ms = 0.0
        was_down = False

        # Observability is read-only: gauges/counters sample state the
        # loop computes anyway, so the disabled path (obs is None) is
        # bit-identical to an uninstrumented run.
        obs = _obs._ACTIVE
        wall_t0 = time.perf_counter() if obs is not None else 0.0
        if obs is not None:
            heap_gauge = obs.metrics.gauge("sut.heap.used_bytes")
            queue_gauge = obs.metrics.gauge("sut.appserver.in_flight")

        for tick_index in range(n_ticks):
            now = tick_index * tick_s

            # --- Faults in force this tick --------------------------------
            mods = schedule.modifiers_at(now) if schedule.active else NO_FAULTS
            if schedule.active:
                database.miss_factor = mods.db_miss_factor
                disk.service_factor = mods.disk_service_factor
            server_down = mods.server_down
            if server_down and not was_down:
                # Crash edge: every held request is lost; clients see
                # the connection reset immediately.
                for request in appserver.drop_all() + disk.drop_all():
                    request.abandoned = True
                    client_failure(request.type_index, request.attempt, now)
            if server_down:
                tracker.down_ticks.append(tick_index)
            was_down = server_down

            # --- Client-side timeouts -------------------------------------
            if retry.enabled:
                for type_index, pending in enumerate(watch):
                    while pending and pending[0][0] <= now:
                        _, request = pending.popleft()
                        if request.finished or request.abandoned:
                            continue
                        request.abandoned = True
                        tracker.timeouts[type_index] += 1
                        client_failure(type_index, request.attempt, now)

            # --- Arrivals -------------------------------------------------
            if degradation.enabled:
                appserver.update_brownout(degradation)
            arrivals = driver.arrivals(now)
            if server_down:
                # Connection refused: nothing is admitted while down.
                for type_index, count in enumerate(arrivals):
                    tracker.offered[type_index] += count
                    for _ in range(count):
                        client_failure(type_index, 1, now)
                if retry.enabled:
                    for type_index, attempt in driver.due_retries(now):
                        client_failure(type_index, attempt, now)
            else:
                for type_index, count in enumerate(arrivals):
                    tracker.offered[type_index] += count
                    for _ in range(count):
                        try_admit(type_index, 1, now)
                if retry.enabled:
                    for type_index, attempt in driver.due_retries(now):
                        tracker.retries[type_index] += 1
                        try_admit(type_index, attempt, now)

            # --- Live-set evolution ----------------------------------------
            ramp = min(1.0, LIVE_FLOOR + (1.0 - LIVE_FLOOR) * now / LIVE_RAMP_S)
            desired_live = (
                int(live_target * ramp) + appserver.in_flight * LIVE_PER_REQUEST
            )
            if mods.live_extra_bytes:
                desired_live += mods.live_extra_bytes
            # An undersized heap cannot hold the desired live set; the
            # application stalls allocations instead of growing, which
            # manifests as constant GC thrash (the untuned-system
            # behavior the tuning walk demonstrates).
            max_live = heap.capacity_bytes - heap.dark_matter_bytes - 24 * MB
            heap.set_live(max(0, min(desired_live, max_live)))

            # --- GC pause accounting ---------------------------------------
            gc_wall_ms = min(tick_ms, gc_wall_remaining_ms)
            gc_wall_remaining_ms -= gc_wall_ms
            gc_cpu_ms = capacity_ms * (gc_wall_ms / tick_ms)
            mutator_capacity = capacity_ms - gc_cpu_ms
            if server_down:
                mutator_capacity = 0.0

            # --- Mutator service -------------------------------------------
            completed, io_submissions, by_component, by_type, used_ms = (
                appserver.serve(mutator_capacity)
                if mutator_capacity > 0
                else ([], [], [0.0] * len(COMPONENTS), [0.0] * len(specs), 0.0)
            )
            for request in io_submissions:
                disk.submit(request)

            # --- Allocation and GC triggering -------------------------------
            alloc_bytes = 0
            for type_index, cpu_ms in enumerate(by_type):
                alloc_bytes += int(cpu_ms * alloc_per_cpu_ms[type_index])
            needs_gc = heap.allocate(alloc_bytes) if alloc_bytes else False
            if needs_gc and gc_wall_remaining_ms <= 0.0:
                event = collector.collect(heap, now)
                gc_events.append(event)
                gc_wall_remaining_ms = event.pause_ms

            # --- Disk progress ----------------------------------------------
            for request in disk.tick():
                appserver.resume(request)

            # --- Completions -------------------------------------------------
            completions = [0] * len(specs)
            for request in completed:
                if resilience_active:
                    request.finished = True
                    if request.abandoned:
                        # The client already gave up: the server's
                        # effort was wasted and the completion is not
                        # client-visible throughput.
                        tracker.zombie_completions += 1
                        continue
                completions[request.type_index] += 1
                rt = request.response_time_s(now + tick_s)
                rt += webserver.response_overhead_s(request.spec)
                responses[request.type_index].append((now + tick_s, rt))

            idle_ms = max(0.0, capacity_ms - used_ms - gc_cpu_ms)
            timeline.append(
                TickRecord(
                    index=tick_index,
                    arrivals=tuple(arrivals),
                    completions=tuple(completions),
                    cpu_ms_by_component=tuple(by_component),
                    cpu_ms_by_type=tuple(by_type),
                    gc_ms=gc_cpu_ms,
                    idle_ms=idle_ms,
                    io_waiting=disk.queue_length,
                    heap_used_bytes=heap.used_bytes,
                    queue_length=appserver.in_flight,
                )
            )
            if obs is not None:
                heap_gauge.set(heap.used_bytes)
                queue_gauge.set(appserver.in_flight)

        tracker.retries_denied = driver.retries_denied
        result = RunResult(
            config=self.config,
            timeline=timeline,
            gc_events=gc_events,
            responses=responses,
            rejected=rejected,
            db_hit_ratio=database.observed_hit_ratio,
            disk_utilization=disk.utilization(n_ticks),
            disk_mean_queue=disk.mean_queue_length(n_ticks),
            final_heap_used=heap.used_bytes,
            final_dark_matter=heap.dark_matter_bytes,
            resilience=tracker.freeze(),
        )
        if obs is not None:
            _record_run_observability(
                obs, result, time.perf_counter() - wall_t0
            )
        return result


def _record_run_observability(obs, result: RunResult, wall_s: float) -> None:
    """Fold one finished SUT run into the active observability session.

    Runs *after* the result exists — reads it, never alters it.
    """
    cfg = result.config.workload
    metrics = obs.metrics
    metrics.counter("sut.runs").inc()
    metrics.histogram("sut.run.wall_s").observe(wall_s)
    for type_index, spec in enumerate(cfg.transactions):
        labels = {"type": spec.name}
        metrics.counter("sut.completions", labels).inc(
            len(result.responses[type_index])
        )
        metrics.counter("sut.rejected", labels).inc(result.rejected[type_index])
        response_hist = metrics.histogram("sut.response_s", labels)
        for _, response_s in result.responses[type_index]:
            response_hist.observe(response_s)

    tracer = obs.tracer
    steady_start, steady_end = result.steady_window()
    tracer.record("warmup", "run", start_s=0.0, duration_s=steady_start)
    tracer.record(
        "steady", "run", start_s=steady_start, duration_s=steady_end - steady_start
    )
    tracer.record(
        "rampdown",
        "run",
        start_s=steady_end,
        duration_s=cfg.duration_s - steady_end,
    )
    tracer.record(
        "sut.run",
        "run",
        start_s=0.0,
        duration_s=wall_s,
        clock=WALL,
        labels={"duration_s": cfg.duration_s, "seed": result.config.seed},
    )
