"""The database tier: buffer pool behavior and IR-scaled data size.

The benchmark scales its initial database with the injection rate
("busier servers tend to have larger data sets"), which slightly
depresses the buffer-pool hit ratio at higher IRs.  The database's job
in the simulation is to decide, per transaction, how many of its
queries miss the buffer pool and therefore require physical I/O.
"""

from __future__ import annotations

import random

from repro.config import TransactionSpec, WorkloadConfig
from repro.workload.transactions import poisson

#: Reference IR at which ``buffer_pool_hit`` is calibrated.
_REFERENCE_IR = 40
#: Hit-ratio degradation per IR unit above the reference (larger data
#: set, same buffer pool).
_HIT_SLOPE = 0.0015


class Database:
    """DB2-like query cost model."""

    def __init__(self, config: WorkloadConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.queries_issued = 0
        self.buffer_misses = 0
        #: Fault hook: a db_slowdown fault multiplies the buffer-pool
        #: miss probability (working set spilling the pool).  1.0 —
        #: the default — is exactly the pre-fault behavior.
        self.miss_factor = 1.0

    @property
    def data_scale(self) -> float:
        """Relative size of the initial database (1.0 at IR 40)."""
        return self.config.injection_rate / _REFERENCE_IR

    @property
    def effective_hit_ratio(self) -> float:
        base = self.config.buffer_pool_hit
        delta = (self.config.injection_rate - _REFERENCE_IR) * _HIT_SLOPE
        return min(0.98, max(0.30, base - delta))

    def plan_ios(self, spec: TransactionSpec) -> int:
        """Physical I/Os a new transaction of this type will incur."""
        n_queries = poisson(self.rng, spec.db_queries)
        self.queries_issued += n_queries
        miss_p = min(0.98, (1.0 - self.effective_hit_ratio) * self.miss_factor)
        misses = 0
        for _ in range(n_queries):
            if self.rng.random() < miss_p:
                misses += 1
        self.buffer_misses += misses
        return misses

    @property
    def observed_hit_ratio(self) -> float:
        if self.queries_issued == 0:
            return 1.0
        return 1.0 - self.buffer_misses / self.queries_issued
