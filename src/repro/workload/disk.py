"""Database storage devices: RAM disk or a small array of hard disks.

The paper could only drive the SUT to full utilization with an
OS-managed RAM disk (or "more disks"): with two hard disks the I/O
wait time "would grow dramatically, causing the response time to grow
and the benchmark to fail".  This model is a simple FIFO service
center: ``n_disks`` servers each delivering ``1/service_ms`` requests
per millisecond; RAM disks are the same thing with a ~50 microsecond
service time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.config import DiskConfig
from repro.workload.transactions import Request


class DiskModel:
    """FIFO disk service center advanced tick by tick."""

    def __init__(self, config: DiskConfig, tick_s: float):
        self.config = config
        self.tick_ms = tick_s * 1000.0
        self._queue: Deque[Request] = deque()
        #: Unused service budget carried into the next tick (a request
        #: mid-service at a tick boundary).
        self._carry_ms = 0.0
        self.total_submitted = 0
        self.total_completed = 0
        self.busy_ms = 0.0
        self.wait_samples = 0
        #: Fault hook: a disk_degraded fault multiplies per-request
        #: service time.  1.0 — the default — is exactly the pre-fault
        #: behavior.
        self.service_factor = 1.0

    def submit(self, request: Request) -> None:
        self._queue.append(request)
        self.total_submitted += 1

    def drop_all(self) -> List[Request]:
        """A crash loses all queued I/O: return and clear the queue."""
        dropped = list(self._queue)
        self._queue.clear()
        self._carry_ms = 0.0
        return dropped

    def tick(self) -> List[Request]:
        """Advance one tick; returns requests whose I/O completed."""
        budget = self._carry_ms + self.tick_ms * self.config.n_disks
        service = self.config.service_ms * self.service_factor
        completed: List[Request] = []
        while self._queue and budget >= service:
            budget -= service
            self.busy_ms += service
            request = self._queue.popleft()
            request.io_complete()
            completed.append(request)
            self.total_completed += 1
        # Carry at most one service quantum of residual budget so an
        # empty queue does not bank unlimited capacity.  The cap is the
        # *un-degraded* quantum: capping against a fault-inflated
        # quantum would bank many healthy quanta of free capacity for
        # the tick a disk_degraded fault clears.
        carry_cap = min(service, self.config.service_ms)
        self._carry_ms = min(budget, carry_cap) if self._queue else 0.0
        self.wait_samples += len(self._queue)
        return completed

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self, n_ticks: int) -> float:
        """Fraction of total disk capacity consumed over ``n_ticks``."""
        if n_ticks <= 0:
            return 0.0
        capacity = n_ticks * self.tick_ms * self.config.n_disks
        return self.busy_ms / capacity

    def mean_queue_length(self, n_ticks: int) -> float:
        return self.wait_samples / n_ticks if n_ticks else 0.0
