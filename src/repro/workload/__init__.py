"""The SPECjAppServer2004-like multi-tier workload simulator.

A driver injects dealer-domain (web) and manufacturing (RMI)
transactions at a configured injection rate into a simulated SUT — web
server, application server (thread pool + component CPU demands),
database (buffer pool + disks), JVM heap and garbage collector — all
advanced by a fixed-tick discrete simulation.

The run produces a :class:`~repro.workload.timeline.RunTimeline` whose
per-tick records (throughput by transaction type, CPU time by software
component and by transaction type, GC activity, heap occupancy, I/O
wait) feed three consumers:

* the high-level figures (2, 3, 4) and benchmark metrics directly;
* the software tools (:mod:`repro.tools`);
* the workload-to-microarchitecture bridge
  (:mod:`repro.workload.bridge`), which turns each hpmstat window's
  tick into a phase descriptor for the CPU model.
"""

from repro.workload.metrics import BenchmarkReport, evaluate_run
from repro.workload.sut import RunResult, SystemUnderTest
from repro.workload.timeline import COMPONENTS, RunTimeline, TickRecord

__all__ = [
    "BenchmarkReport",
    "evaluate_run",
    "RunResult",
    "SystemUnderTest",
    "COMPONENTS",
    "RunTimeline",
    "TickRecord",
]
