"""Per-tick run records and aggregation helpers.

The tick record is deliberately flat (tuples of floats, fixed component
order) because a one-hour run at 0.1 s ticks produces 36,000 of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Software components tracked by the CPU accounting, in Figure 4's
#: breakdown.  GC and idle time are tracked separately.
COMPONENTS: Tuple[str, ...] = ("web", "was_jited", "was_nonjited", "db2", "kernel")


@dataclass(frozen=True)
class TickRecord:
    """Everything measured during one simulation tick."""

    index: int
    arrivals: Tuple[int, ...]
    completions: Tuple[int, ...]
    cpu_ms_by_component: Tuple[float, ...]
    cpu_ms_by_type: Tuple[float, ...]
    gc_ms: float
    idle_ms: float
    io_waiting: int
    heap_used_bytes: int
    queue_length: int

    @property
    def busy_ms(self) -> float:
        return sum(self.cpu_ms_by_component) + self.gc_ms


class RunTimeline:
    """The full sequence of tick records for one run."""

    def __init__(self, tick_s: float, tx_names: Sequence[str], n_cores: int):
        if tick_s <= 0:
            raise ValueError("tick must be positive")
        self.tick_s = tick_s
        self.tx_names = tuple(tx_names)
        self.n_cores = n_cores
        self.records: List[TickRecord] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def append(self, record: TickRecord) -> None:
        if record.index != len(self.records):
            raise ValueError(
                f"out-of-order tick {record.index}, expected {len(self.records)}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration_s(self) -> float:
        return len(self.records) * self.tick_s

    @property
    def capacity_ms_per_tick(self) -> float:
        return self.n_cores * self.tick_s * 1000.0

    def tick_at(self, t_s: float) -> TickRecord:
        idx = int(t_s / self.tick_s)
        if idx < 0 or idx >= len(self.records):
            raise ValueError(f"time {t_s} outside run")
        return self.records[idx]

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _slice(self, t_from: float, t_to: float) -> List[TickRecord]:
        i0 = max(0, int(t_from / self.tick_s))
        i1 = min(len(self.records), int(t_to / self.tick_s))
        return self.records[i0:i1]

    def throughput_series(
        self, bucket_s: float = 1.0, t_from: float = 0.0, t_to: float = float("inf")
    ) -> Tuple[List[float], List[List[float]]]:
        """Per-bucket throughput (ops/s) per transaction type.

        Returns ``(bucket_times, series)`` where ``series[k]`` is the
        ops/s series of transaction type ``k`` — Figure 2's four lines.
        """
        records = self._slice(t_from, min(t_to, self.duration_s))
        per_bucket = max(1, int(round(bucket_s / self.tick_s)))
        times: List[float] = []
        series: List[List[float]] = [[] for _ in self.tx_names]
        for start in range(0, len(records) - per_bucket + 1, per_bucket):
            chunk = records[start : start + per_bucket]
            times.append(chunk[0].index * self.tick_s + bucket_s / 2.0)
            span = per_bucket * self.tick_s
            for k in range(len(self.tx_names)):
                total = sum(r.completions[k] for r in chunk)
                series[k].append(total / span)
        return times, series

    def utilization_series(self, bucket_s: float = 1.0) -> Tuple[List[float], List[float]]:
        """Per-bucket CPU utilization (busy / capacity)."""
        per_bucket = max(1, int(round(bucket_s / self.tick_s)))
        times: List[float] = []
        values: List[float] = []
        cap = self.capacity_ms_per_tick * per_bucket
        for start in range(0, len(self.records) - per_bucket + 1, per_bucket):
            chunk = self.records[start : start + per_bucket]
            times.append(chunk[0].index * self.tick_s + bucket_s / 2.0)
            values.append(sum(r.busy_ms for r in chunk) / cap)
        return times, values

    def mean_utilization(self, t_from: float = 0.0, t_to: float = float("inf")) -> float:
        records = self._slice(t_from, min(t_to, self.duration_s))
        if not records:
            raise ValueError("empty window")
        busy = sum(r.busy_ms for r in records)
        return busy / (self.capacity_ms_per_tick * len(records))

    def component_shares(
        self, t_from: float = 0.0, t_to: float = float("inf")
    ) -> dict:
        """Share of *busy* CPU time per component (plus ``"gc"``).

        This is the Figure 4 breakdown when measured over the last five
        minutes of the run.
        """
        records = self._slice(t_from, min(t_to, self.duration_s))
        if not records:
            raise ValueError("empty window")
        totals = {name: 0.0 for name in COMPONENTS}
        gc_total = 0.0
        for r in records:
            for name, ms in zip(COMPONENTS, r.cpu_ms_by_component):
                totals[name] += ms
            gc_total += r.gc_ms
        busy = sum(totals.values()) + gc_total
        if busy <= 0:
            raise ValueError("no busy time in window")
        shares = {name: ms / busy for name, ms in totals.items()}
        shares["gc"] = gc_total / busy
        return shares

    def heap_series(self, bucket_s: float = 1.0) -> Tuple[List[float], List[float]]:
        """Heap used (bytes) at bucket boundaries."""
        per_bucket = max(1, int(round(bucket_s / self.tick_s)))
        times: List[float] = []
        values: List[float] = []
        for start in range(0, len(self.records), per_bucket):
            r = self.records[start]
            times.append(r.index * self.tick_s)
            values.append(float(r.heap_used_bytes))
        return times, values
