"""The application-server tier: admission, thread pool, CPU scheduling.

WebSphere-like behavior at the level this study needs:

* at most ``thread_pool`` transactions execute concurrently; the rest
  wait in an accept queue (their queueing time counts toward response
  time, which is how an overloaded SUT fails its deadlines);
* running transactions share the CPUs processor-sharing style;
* consumed CPU time is attributed to software components using the
  transaction spec's per-component demand proportions — the source of
  Figure 4's breakdown — and to transaction types — the source of the
  per-window intensity mix used by the microarchitecture bridge.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.config import DegradationPolicy, TransactionSpec, WorkloadConfig
from repro.workload.timeline import COMPONENTS
from repro.workload.transactions import Request


class AppServer:
    """Admission control + processor-sharing CPU scheduler."""

    def __init__(self, config: WorkloadConfig, n_cores: int):
        self.config = config
        self.n_cores = n_cores
        self.accept_queue: Deque[Request] = deque()
        self.running: List[Request] = []
        self.io_blocked = 0
        # Graceful-degradation (brownout) state: consecutive ticks of
        # sustained overload and the current low-priority shed fraction.
        self._overload_ticks = 0
        self.shed_fraction = 0.0
        # Per-spec component proportions (normalized once).
        self._proportions: Dict[str, Tuple[float, ...]] = {}
        for spec in config.transactions:
            total = spec.total_cpu_ms
            self._proportions[spec.name] = tuple(
                spec.cpu_ms.get(name, 0.0) / total for name in COMPONENTS
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, request: Request) -> None:
        self.accept_queue.append(request)

    # ------------------------------------------------------------------
    # Graceful degradation (brownout)
    # ------------------------------------------------------------------
    def update_brownout(self, policy: DegradationPolicy) -> None:
        """Track sustained overload; called once per tick when enabled.

        The shed fraction ramps linearly from 0 at the brownout
        threshold to ``max_shed_fraction`` at ``max_in_flight``, but
        only after the overload has persisted ``sustain_ticks`` ticks
        (momentary bursts are not browned out).
        """
        limit = self.config.max_in_flight
        threshold = policy.brownout_threshold * limit
        if self.in_flight > threshold:
            self._overload_ticks += 1
        else:
            self._overload_ticks = 0
            self.shed_fraction = 0.0
            return
        if self._overload_ticks < policy.sustain_ticks:
            self.shed_fraction = 0.0
            return
        span = max(1.0, limit - threshold)
        depth = min(1.0, (self.in_flight - threshold) / span)
        self.shed_fraction = policy.max_shed_fraction * depth

    def should_shed(
        self,
        spec: TransactionSpec,
        policy: DegradationPolicy,
        rng: Optional[random.Random],
    ) -> bool:
        """Brownout decision for one arriving operation."""
        if self.shed_fraction <= 0.0 or spec.priority >= policy.shed_priority_below:
            return False
        return rng.random() < self.shed_fraction

    # ------------------------------------------------------------------
    # Crash support
    # ------------------------------------------------------------------
    def drop_all(self) -> List[Request]:
        """A crash wipes the server: return and clear all held requests.

        Requests blocked on I/O live in the disk queue, not here; the
        caller collects those via ``DiskModel.drop_all`` — this method
        only zeroes the counter tracking them.
        """
        dropped = list(self.running) + list(self.accept_queue)
        self.running = []
        self.accept_queue.clear()
        self.io_blocked = 0
        self._overload_ticks = 0
        self.shed_fraction = 0.0
        return dropped

    def _fill_pool(self) -> None:
        capacity = self.config.thread_pool - len(self.running) - self.io_blocked
        while capacity > 0 and self.accept_queue:
            self.running.append(self.accept_queue.popleft())
            capacity -= 1

    def resume(self, request: Request) -> None:
        """A request's I/O finished; it becomes runnable again."""
        self.io_blocked -= 1
        self.running.append(request)

    # ------------------------------------------------------------------
    # One scheduling quantum
    # ------------------------------------------------------------------
    def serve(
        self, capacity_ms: float
    ) -> Tuple[List[Request], List[Request], List[float], List[float], float]:
        """Run the pool for one tick of CPU capacity.

        Returns ``(completed, io_submissions, cpu_by_component,
        cpu_by_type, used_ms)``.
        """
        self._fill_pool()
        cpu_by_component = [0.0] * len(COMPONENTS)
        cpu_by_type = [0.0] * len(self.config.transactions)
        completed: List[Request] = []
        io_submissions: List[Request] = []
        used = 0.0

        remaining = capacity_ms
        # Processor sharing via repeated equal division: requests that
        # finish (or block on I/O) early return their unused share.
        while remaining > 1e-9 and self.running:
            share = remaining / len(self.running)
            still_running: List[Request] = []
            consumed_this_round = 0.0
            for request in self.running:
                want = min(share, request.remaining_cpu_ms)
                budget = request.cpu_until_next_io()
                if budget is not None:
                    want = min(want, budget + 1e-12)
                before = request.consumed_cpu_ms
                hit_io = request.consume(want)
                delta = request.consumed_cpu_ms - before
                consumed_this_round += delta
                proportions = self._proportions[request.spec.name]
                for i, p in enumerate(proportions):
                    cpu_by_component[i] += delta * p
                cpu_by_type[request.type_index] += delta
                if hit_io:
                    io_submissions.append(request)
                    self.io_blocked += 1
                elif request.done:
                    completed.append(request)
                else:
                    still_running.append(request)
            self.running = still_running
            used += consumed_this_round
            remaining -= consumed_this_round
            # If nothing was consumed this round every runnable request
            # is finished/blocked; stop to avoid spinning.
            if consumed_this_round <= 1e-12:
                break
            self._fill_pool()

        return completed, io_submissions, cpu_by_component, cpu_by_type, used

    @property
    def in_flight(self) -> int:
        return len(self.running) + len(self.accept_queue) + self.io_blocked
