"""The application-server tier: admission, thread pool, CPU scheduling.

WebSphere-like behavior at the level this study needs:

* at most ``thread_pool`` transactions execute concurrently; the rest
  wait in an accept queue (their queueing time counts toward response
  time, which is how an overloaded SUT fails its deadlines);
* running transactions share the CPUs processor-sharing style;
* consumed CPU time is attributed to software components using the
  transaction spec's per-component demand proportions — the source of
  Figure 4's breakdown — and to transaction types — the source of the
  per-window intensity mix used by the microarchitecture bridge.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.config import WorkloadConfig
from repro.workload.timeline import COMPONENTS
from repro.workload.transactions import Request


class AppServer:
    """Admission control + processor-sharing CPU scheduler."""

    def __init__(self, config: WorkloadConfig, n_cores: int):
        self.config = config
        self.n_cores = n_cores
        self.accept_queue: Deque[Request] = deque()
        self.running: List[Request] = []
        self.io_blocked = 0
        # Per-spec component proportions (normalized once).
        self._proportions: Dict[str, Tuple[float, ...]] = {}
        for spec in config.transactions:
            total = spec.total_cpu_ms
            self._proportions[spec.name] = tuple(
                spec.cpu_ms.get(name, 0.0) / total for name in COMPONENTS
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, request: Request) -> None:
        self.accept_queue.append(request)

    def _fill_pool(self) -> None:
        capacity = self.config.thread_pool - len(self.running) - self.io_blocked
        while capacity > 0 and self.accept_queue:
            self.running.append(self.accept_queue.popleft())
            capacity -= 1

    def resume(self, request: Request) -> None:
        """A request's I/O finished; it becomes runnable again."""
        self.io_blocked -= 1
        self.running.append(request)

    # ------------------------------------------------------------------
    # One scheduling quantum
    # ------------------------------------------------------------------
    def serve(
        self, capacity_ms: float
    ) -> Tuple[List[Request], List[Request], List[float], List[float], float]:
        """Run the pool for one tick of CPU capacity.

        Returns ``(completed, io_submissions, cpu_by_component,
        cpu_by_type, used_ms)``.
        """
        self._fill_pool()
        cpu_by_component = [0.0] * len(COMPONENTS)
        cpu_by_type = [0.0] * len(self.config.transactions)
        completed: List[Request] = []
        io_submissions: List[Request] = []
        used = 0.0

        remaining = capacity_ms
        # Processor sharing via repeated equal division: requests that
        # finish (or block on I/O) early return their unused share.
        while remaining > 1e-9 and self.running:
            share = remaining / len(self.running)
            still_running: List[Request] = []
            consumed_this_round = 0.0
            for request in self.running:
                want = min(share, request.remaining_cpu_ms)
                budget = request.cpu_until_next_io()
                if budget is not None:
                    want = min(want, budget + 1e-12)
                before = request.consumed_cpu_ms
                hit_io = request.consume(want)
                delta = request.consumed_cpu_ms - before
                consumed_this_round += delta
                proportions = self._proportions[request.spec.name]
                for i, p in enumerate(proportions):
                    cpu_by_component[i] += delta * p
                cpu_by_type[request.type_index] += delta
                if hit_io:
                    io_submissions.append(request)
                    self.io_blocked += 1
                elif request.done:
                    completed.append(request)
                else:
                    still_running.append(request)
            self.running = still_running
            used += consumed_this_round
            remaining -= consumed_this_round
            # If nothing was consumed this round every runnable request
            # is finished/blocked; stop to avoid spinning.
            if consumed_this_round <= 1e-12:
                break
            self._fill_pool()

        return completed, io_submissions, cpu_by_component, cpu_by_type, used

    @property
    def in_flight(self) -> int:
        return len(self.running) + len(self.accept_queue) + self.io_blocked
