"""The web front-end tier.

HTTP operations pass through the web server (its CPU demand is part of
each transaction's component mix); RMI operations go directly to the
application server.  The front-end contributes a small
connection/parse/transfer latency to web responses and keeps the
per-protocol request accounting the pass/fail criteria are defined
over (90% of web requests under 2 s, RMI under 5 s).
"""

from __future__ import annotations

import random

from repro.config import TransactionSpec


class WebServer:
    """Connection handling overhead + per-protocol accounting."""

    #: Mean added latency for an HTTP round trip (connection handling,
    #: request parsing, response transfer).
    HTTP_OVERHEAD_MS = 9.0
    #: RMI marshalling overhead (direct to the app server).
    RMI_OVERHEAD_MS = 3.0

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.web_requests = 0
        self.rmi_requests = 0

    def route(self, spec: TransactionSpec) -> None:
        """Register an incoming operation with the right front-end."""
        if spec.protocol == "web":
            self.web_requests += 1
        else:
            self.rmi_requests += 1

    def response_overhead_s(self, spec: TransactionSpec) -> float:
        """Front-end latency added to this operation's response time."""
        if spec.protocol == "web":
            mean = self.HTTP_OVERHEAD_MS
        else:
            mean = self.RMI_OVERHEAD_MS
        return self.rng.uniform(0.5, 1.5) * mean / 1000.0
