"""Workload presets: jas2004 and the contrast baselines.

The paper's second contribution is *contrast*: jas2004 behaves unlike
the small Java benchmarks earlier studies used (SPECjbb2000,
SPECjvm98) and unlike cache-to-cache-heavy transactional workloads
(Java TPC-W in Cain et al.).  These presets encode those baselines so
the contrast experiments (Section 5 / conclusions) can run:

* :func:`jas2004` — the paper's system under test (the package-wide
  defaults, parameterized by IR, disks and duration).
* :func:`jbb2000_like` — a server-side "simple" benchmark: one
  transaction type, no web/DB tiers, a *hot* method profile, a small
  heap with heavy GC.
* :func:`jvm98_like` — a client-side benchmark: tiny heap, very hot
  profile, GC-dominated.
* :func:`tpcw_like` — a jas2004-shaped workload whose shared data is
  heavily written across chips (high modified cache-to-cache traffic).
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Optional

from repro.config import (
    DiskConfig,
    ExperimentConfig,
    GcCostModel,
    JvmConfig,
    SamplingConfig,
    SharingProfile,
    TransactionSpec,
    WorkloadConfig,
)


def jas2004(
    ir: int = 40,
    duration_s: float = 3600.0,
    disk: Optional[DiskConfig] = None,
    seed: int = 2007,
) -> ExperimentConfig:
    """The paper's tuned system under test."""
    base = ExperimentConfig(seed=seed)
    workload = replace(
        base.workload,
        injection_rate=ir,
        duration_s=duration_s,
        ramp_up_s=min(300.0, duration_s / 6.0),
        ramp_down_s=min(120.0, duration_s / 12.0),
        disk=disk if disk is not None else DiskConfig.ram_disk(),
    )
    return base.with_overrides(workload=workload)


def _single_type_workload(
    spec: TransactionSpec,
    ops_per_s: float,
    duration_s: float,
    sharing: SharingProfile,
) -> WorkloadConfig:
    return WorkloadConfig(
        injection_rate=max(1, int(round(ops_per_s / 1.6))),
        ops_per_ir=ops_per_s / max(1, int(round(ops_per_s / 1.6))),
        duration_s=duration_s,
        ramp_up_s=min(60.0, duration_s / 6.0),
        ramp_down_s=min(30.0, duration_s / 12.0),
        transactions=(spec,),
        disk=DiskConfig.ram_disk(),
        buffer_pool_hit=0.995,
        sharing=sharing,
    )


def jbb2000_like(duration_s: float = 1200.0, seed: int = 2000) -> ExperimentConfig:
    """A SPECjbb2000-style 'simple' server benchmark.

    Pure JVM stress: >90% of CPU in JITed benchmark code, no web or
    database tier, a concentrated (hot-spot) method profile, a small
    heap with frequent collections.
    """
    spec = TransactionSpec(
        name="JBBTransaction",
        protocol="rmi",
        share=1.0,
        cpu_ms={
            "was_jited": 23.0,  # the benchmark's own compiled code
            "was_nonjited": 1.5,  # JVM runtime
            "web": 0.0,
            "db2": 0.0,
            "kernel": 0.8,
        },
        db_queries=0.0,
        alloc_kb=540.0,
        lock_intensity=0.9,
        stream_intensity=0.8,
        cold_intensity=0.4,
        shared_intensity=0.3,
    )
    jvm = JvmConfig(
        heap_mb=256,
        live_set_mb=110.0,
        n_jited_methods=700,
        warm_methods=12,
        warm_share=0.90,
        gc=GcCostModel(trigger_free_fraction=0.04),
    )
    return ExperimentConfig(
        seed=seed,
        jvm=jvm,
        workload=_single_type_workload(spec, 92.0, duration_s, SharingProfile()),
        sampling=SamplingConfig(),
    )


def jvm98_like(duration_s: float = 600.0, seed: int = 1998) -> ExperimentConfig:
    """A SPECjvm98-style client benchmark: tiny heap, hot kernels."""
    spec = TransactionSpec(
        name="Jvm98Iteration",
        protocol="rmi",
        share=1.0,
        cpu_ms={
            "was_jited": 45.0,
            "was_nonjited": 3.0,
            "web": 0.0,
            "db2": 0.0,
            "kernel": 1.5,
        },
        db_queries=0.0,
        alloc_kb=680.0,
        lock_intensity=0.2,
        stream_intensity=1.2,
        cold_intensity=0.3,
        shared_intensity=0.1,
    )
    jvm = JvmConfig(
        heap_mb=64,
        live_set_mb=24.0,
        n_jited_methods=200,
        warm_methods=6,
        warm_share=0.92,
        gc=GcCostModel(trigger_free_fraction=0.05),
    )
    return ExperimentConfig(
        seed=seed,
        jvm=jvm,
        workload=_single_type_workload(spec, 52.0, duration_s, SharingProfile()),
        sampling=SamplingConfig(),
    )


def tpcw_like(
    ir: int = 40, duration_s: float = 1800.0, seed: int = 2001
) -> ExperimentConfig:
    """A Java TPC-W-style workload: heavy modified cache-to-cache traffic.

    Cain et al. found a large share of L2 misses serviced by
    cache-to-cache transfers; this preset raises both the shared-data
    intensity of every transaction and the modified fraction of remote
    hits.
    """
    base = jas2004(ir=ir, duration_s=duration_s, seed=seed)
    sharing = SharingProfile(remote_fraction=0.85, modified_fraction=0.55)
    transactions = tuple(
        replace(spec, shared_intensity=spec.shared_intensity * 7.0)
        for spec in base.workload.transactions
    )
    workload = replace(base.workload, sharing=sharing, transactions=transactions)
    return base.with_overrides(workload=workload)


def scaled_for_tests(config: ExperimentConfig, seed: Optional[int] = None) -> ExperimentConfig:
    """Shrink a preset for fast unit tests, preserving its ratios."""
    workload = replace(
        config.workload,
        duration_s=min(240.0, config.workload.duration_s),
        ramp_up_s=20.0,
        ramp_down_s=10.0,
    )
    jvm = replace(
        config.jvm,
        n_jited_methods=min(500, config.jvm.n_jited_methods),
        warm_methods=min(30, config.jvm.warm_methods),
    )
    sampling = replace(config.sampling, window_cycles=6000, warmup_windows=4)
    return ExperimentConfig(
        seed=seed if seed is not None else config.seed,
        machine=config.machine,
        jvm=jvm,
        workload=workload,
        sampling=sampling,
    )


def jas2004_sovereign(
    ir: int = 40, duration_s: float = 3600.0, seed: int = 1412
) -> ExperimentConfig:
    """jas2004 on the Sovereign 1.4.1 JVM instead of J9.

    The paper evaluated both JVMs and found the same trends, with one
    calibration difference it calls out in footnote 2: at the same
    injection rate, Sovereign drives a *higher* CPU utilization than
    J9 (less efficient generated code and runtime).  Modeled as ~6%
    more CPU per transaction and a slightly costlier collector.
    """
    base = jas2004(ir=ir, duration_s=duration_s, seed=seed)
    transactions = tuple(
        dataclasses.replace(
            spec,
            cpu_ms={name: ms * 1.06 for name, ms in spec.cpu_ms.items()},
        )
        for spec in base.workload.transactions
    )
    jvm = dataclasses.replace(
        base.jvm,
        gc=dataclasses.replace(
            base.jvm.gc,
            mark_ms_per_live_mb=base.jvm.gc.mark_ms_per_live_mb * 1.12,
            sweep_ms_per_heap_mb=base.jvm.gc.sweep_ms_per_heap_mb * 1.15,
        ),
    )
    return base.with_overrides(
        workload=dataclasses.replace(base.workload, transactions=transactions),
        jvm=jvm,
    )


def trade6(ir: int = 50, duration_s: float = 1800.0, seed: int = 6) -> ExperimentConfig:
    """A Trade6-like J2EE workload (IBM's stock-trading sample app).

    The paper's conclusions note: "In a separate study, we observed a
    similar small GC runtime overhead with Trade6, another J2EE
    workload."  Trade6 is lighter per operation than jas2004 (simple
    buy/sell/quote operations), with a smaller heap and live set but
    the same architectural shape: WebSphere + DB2, flat profile,
    modest GC.
    """
    quote = TransactionSpec(
        name="Quote",
        protocol="web",
        share=0.55,
        cpu_ms={
            "was_jited": 9.0,
            "was_nonjited": 9.5,
            "web": 4.5,
            "db2": 8.0,
            "kernel": 7.0,
        },
        db_queries=9.0,
        alloc_kb=260.0,
        lock_intensity=0.7,
        stream_intensity=1.4,
        cold_intensity=1.1,
        shared_intensity=0.8,
    )
    trade = TransactionSpec(
        name="BuySell",
        protocol="web",
        share=0.30,
        cpu_ms={
            "was_jited": 12.5,
            "was_nonjited": 11.5,
            "web": 4.0,
            "db2": 9.0,
            "kernel": 8.0,
        },
        db_queries=11.0,
        alloc_kb=360.0,
        lock_intensity=1.9,
        stream_intensity=0.5,
        cold_intensity=0.9,
        shared_intensity=1.5,
    )
    portfolio = TransactionSpec(
        name="Portfolio",
        protocol="rmi",
        share=0.15,
        cpu_ms={
            "was_jited": 13.0,
            "was_nonjited": 10.0,
            "web": 0.0,
            "db2": 9.5,
            "kernel": 7.5,
        },
        db_queries=12.0,
        alloc_kb=330.0,
        lock_intensity=1.0,
        stream_intensity=0.8,
        cold_intensity=0.9,
        shared_intensity=1.1,
    )
    jvm = JvmConfig(
        heap_mb=768,
        live_set_mb=140.0,
        n_jited_methods=6000,
        warm_methods=180,
        warm_share=0.52,
    )
    workload = WorkloadConfig(
        injection_rate=ir,
        ops_per_ir=1.5,
        duration_s=duration_s,
        ramp_up_s=min(240.0, duration_s / 6.0),
        ramp_down_s=min(120.0, duration_s / 12.0),
        transactions=(quote, trade, portfolio),
        disk=DiskConfig.ram_disk(),
        buffer_pool_hit=0.78,
    )
    return ExperimentConfig(seed=seed, jvm=jvm, workload=workload)
