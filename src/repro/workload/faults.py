"""Fault injection and resilience accounting for the simulators.

The configuration side lives in :mod:`repro.config`
(:class:`~repro.config.FaultEvent`, :class:`~repro.config.FaultConfig`,
:class:`~repro.config.RetryPolicy`,
:class:`~repro.config.DegradationPolicy`); this module is the runtime
side:

* :class:`FaultSchedule` — the ordered event list, queried once per
  tick for the :class:`FaultModifiers` currently in force;
* :class:`FaultModifiers` — the flattened view the tick loops consume
  (server down? which blades? what factor on DB/disk/interconnect?);
* :func:`backoff_delay_s` — exponential backoff with uniform jitter,
  shared by the single-server driver and any future cluster client;
* :class:`ResilienceTracker` — per-run counters (offered, retries,
  timeouts, failures, shed, zombies, downtime) frozen into a
  :class:`ResilienceStats` attached to the run result.

Everything here is gated: with the default empty
:class:`~repro.config.FaultConfig` no modifier is ever computed, no
extra random draw happens, and runs are bit-identical to the
pre-subsystem simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.config import FaultEvent, RetryPolicy
from repro.util.units import MB


@dataclass(frozen=True)
class FaultModifiers:
    """Every fault effect in force at one instant, flattened.

    The neutral values are chosen so applying them is the identity:
    factors of 1.0, probabilities of 0.0, no downed components.
    """

    #: The whole (single-server) SUT is down.
    server_down: bool = False
    #: Downed app blades (cluster deployments).
    blades_down: FrozenSet[int] = frozenset()
    #: Multiplier on DB2 per-query CPU cost.
    db_cpu_factor: float = 1.0
    #: Multiplier on the buffer-pool miss probability.
    db_miss_factor: float = 1.0
    #: Multiplier on per-request disk service time.
    disk_service_factor: float = 1.0
    #: Multiplier on cluster per-hop interconnect latency.
    hop_latency_factor: float = 1.0
    #: Per-transaction interconnect drop probability (cluster).
    net_loss_p: float = 0.0
    #: Extra live-set bytes pinned (GC pressure).
    live_extra_bytes: int = 0

    @property
    def neutral(self) -> bool:
        return self == NO_FAULTS


#: Shared neutral instance: what an empty schedule always returns.
NO_FAULTS = FaultModifiers()


class FaultSchedule:
    """The run's fault events, queryable per tick.

    The schedule is tiny (a handful of events), so the per-tick query
    is a linear scan over events that have started and not yet been
    retired; once every event has ended the scan short-circuits.
    """

    def __init__(self, events: Tuple[FaultEvent, ...] = ()):
        self.events = tuple(sorted(events, key=lambda e: (e.start_s, e.kind)))
        self.active = bool(self.events)
        self._horizon = max((e.end_s for e in self.events), default=0.0)

    def modifiers_at(self, t_s: float) -> FaultModifiers:
        """The combined :class:`FaultModifiers` in force at ``t_s``.

        Overlapping faults of the same kind compound multiplicatively
        (factors), saturate (probabilities), or sum (live-set bytes).
        """
        if not self.active or t_s >= self._horizon:
            return NO_FAULTS
        server_down = False
        blades: List[int] = []
        db_cpu = 1.0
        db_miss = 1.0
        disk = 1.0
        hop = 1.0
        loss = 0.0
        live_extra = 0
        hit = False
        for event in self.events:
            if event.start_s > t_s:
                break
            if not event.active_at(t_s):
                continue
            hit = True
            if event.kind == "tier_crash":
                if event.target < 0:
                    server_down = True
                else:
                    blades.append(event.target)
            elif event.kind == "db_slowdown":
                db_cpu *= event.magnitude
                db_miss *= event.magnitude
            elif event.kind == "disk_degraded":
                disk *= event.magnitude
            elif event.kind == "net_latency":
                hop *= event.magnitude
            elif event.kind == "net_loss":
                loss = 1.0 - (1.0 - loss) * (1.0 - event.magnitude)
            elif event.kind == "gc_pressure":
                live_extra += int(event.magnitude * MB)
        if not hit:
            return NO_FAULTS
        return FaultModifiers(
            server_down=server_down,
            blades_down=frozenset(blades),
            db_cpu_factor=db_cpu,
            db_miss_factor=db_miss,
            disk_service_factor=disk,
            hop_latency_factor=hop,
            net_loss_p=loss,
            live_extra_bytes=live_extra,
        )

    def clear_times(self) -> List[float]:
        """End times of every event (recovery measurement points)."""
        return sorted({e.end_s for e in self.events})


def backoff_delay_s(policy: RetryPolicy, attempt: int, rng: random.Random) -> float:
    """Backoff before retry number ``attempt`` (2 = first retry).

    Exponential in the attempt number, capped, with uniform
    ``1 +/- jitter`` multiplicative jitter so synchronized clients
    desynchronize (the classic thundering-herd fix).

    ``backoff_cap_s`` bounds the *final* delay: the jitter draw happens
    first and the product is clamped, so no drawn delay can ever exceed
    the cap (previously the clamp ran before jitter, letting delays
    overshoot the documented cap by up to the jitter fraction).
    """
    exponent = max(0, attempt - 2)
    delay = policy.backoff_base_s * policy.backoff_factor**exponent
    if policy.jitter > 0.0:
        delay *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter)
    return min(policy.backoff_cap_s, delay)


@dataclass(frozen=True)
class ResilienceStats:
    """Frozen per-run resilience counters (all per transaction type).

    ``offered`` counts logical operations (first attempts only), so
    ``goodput <= offered`` holds even under heavy retrying — retries
    are tracked separately and can never inflate throughput.
    """

    offered: Tuple[int, ...]
    retries: Tuple[int, ...]
    timeouts: Tuple[int, ...]
    failed: Tuple[int, ...]
    shed: Tuple[int, ...]
    #: Server-side completions of requests the client had abandoned.
    zombie_completions: int
    #: Retries denied by the retry budget.
    retries_denied: int
    #: Tick indices during which the server was down.
    down_ticks: Tuple[int, ...] = ()

    @property
    def total_offered(self) -> int:
        return sum(self.offered)

    @property
    def total_failed(self) -> int:
        return sum(self.failed)

    @property
    def total_retries(self) -> int:
        return sum(self.retries)

    @property
    def total_timeouts(self) -> int:
        return sum(self.timeouts)

    @property
    def total_shed(self) -> int:
        return sum(self.shed)


class ResilienceTracker:
    """Mutable counters accumulated by the tick loop."""

    def __init__(self, n_types: int):
        self.offered = [0] * n_types
        self.retries = [0] * n_types
        self.timeouts = [0] * n_types
        self.failed = [0] * n_types
        self.shed = [0] * n_types
        self.zombie_completions = 0
        self.retries_denied = 0
        self.down_ticks: List[int] = []

    def freeze(self) -> ResilienceStats:
        return ResilienceStats(
            offered=tuple(self.offered),
            retries=tuple(self.retries),
            timeouts=tuple(self.timeouts),
            failed=tuple(self.failed),
            shed=tuple(self.shed),
            zombie_completions=self.zombie_completions,
            retries_denied=self.retries_denied,
            down_ticks=tuple(self.down_ticks),
        )
