"""The benchmark driver: injects load at the configured IR.

The driver runs on a separate system in the real benchmark and does
not consume SUT resources; here it is a pure arrival generator.  Each
transaction type arrives as an independent Poisson process whose rate
is its share of the total operation rate (``IR x ops_per_ir``), with a
ramp-up/ramp-down envelope at the run's edges (the paper discards a
5-minute ramp-up and 2-minute ramp-down).
"""

from __future__ import annotations

import random
from typing import List

from repro.config import WorkloadConfig
from repro.workload.transactions import poisson


class Driver:
    """Per-tick arrival generation."""

    def __init__(self, config: WorkloadConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self._rates = [
            config.target_ops_per_s * spec.share for spec in config.transactions
        ]

    def load_factor(self, t_s: float) -> float:
        """Ramp envelope: 0..1 over ramp-up, 1..0 over ramp-down."""
        cfg = self.config
        if cfg.ramp_up_s > 0 and t_s < cfg.ramp_up_s:
            return t_s / cfg.ramp_up_s
        down_start = cfg.duration_s - cfg.ramp_down_s
        if cfg.ramp_down_s > 0 and t_s > down_start:
            return max(0.0, (cfg.duration_s - t_s) / cfg.ramp_down_s)
        return 1.0

    def arrivals(self, t_s: float) -> List[int]:
        """Number of new transactions per type arriving this tick."""
        factor = self.load_factor(t_s)
        tick = self.config.tick_s
        return [poisson(self.rng, rate * factor * tick) for rate in self._rates]
