"""The benchmark driver: injects load at the configured IR.

The driver runs on a separate system in the real benchmark and does
not consume SUT resources; here it is a pure arrival generator.  Each
transaction type arrives as an independent Poisson process whose rate
is its share of the total operation rate (``IR x ops_per_ir``), with a
ramp-up/ramp-down envelope at the run's edges (the paper discards a
5-minute ramp-up and 2-minute ramp-down).

When a :class:`~repro.config.RetryPolicy` is enabled the driver also
plays the client side of the resilience model: operations the client
abandons (timeout, connection refused, crash-dropped) are re-injected
after an exponential backoff with jitter, up to the policy's attempt
cap and retry budget.  ``arrivals`` still reports *first attempts
only* — retries arrive through :meth:`due_retries` so steady-state
throughput accounting is never inflated by retrying.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional, Tuple

from repro.config import RetryPolicy, WorkloadConfig
from repro.workload.faults import backoff_delay_s
from repro.workload.transactions import poisson


class Driver:
    """Per-tick arrival generation plus optional client retry logic."""

    def __init__(
        self,
        config: WorkloadConfig,
        rng: random.Random,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[random.Random] = None,
    ):
        self.config = config
        self.rng = rng
        self._rates = [
            config.target_ops_per_s * spec.share for spec in config.transactions
        ]
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.retry_rng = retry_rng
        #: Min-heap of (due_time, seq, type_index, next_attempt).
        self._retry_heap: List[Tuple[float, int, int, int]] = []
        self._retry_seq = 0
        self.first_attempts = 0
        self.retries_scheduled = 0
        self.retries_denied = 0

    def load_factor(self, t_s: float) -> float:
        """Ramp envelope: 0..1 over ramp-up, 1..0 over ramp-down."""
        cfg = self.config
        if cfg.ramp_up_s > 0 and t_s < cfg.ramp_up_s:
            return t_s / cfg.ramp_up_s
        down_start = cfg.duration_s - cfg.ramp_down_s
        if cfg.ramp_down_s > 0 and t_s > down_start:
            return max(0.0, (cfg.duration_s - t_s) / cfg.ramp_down_s)
        return 1.0

    def arrivals(self, t_s: float) -> List[int]:
        """Number of new first-attempt transactions per type this tick."""
        factor = self.load_factor(t_s)
        tick = self.config.tick_s
        counts = [poisson(self.rng, rate * factor * tick) for rate in self._rates]
        self.first_attempts += sum(counts)
        return counts

    # ------------------------------------------------------------------
    # Client-side retry (active only when the policy is enabled)
    # ------------------------------------------------------------------
    def schedule_retry(self, type_index: int, attempt: int, now_s: float) -> bool:
        """Queue a retry for an operation whose attempt just failed.

        ``attempt`` is the attempt that failed (1 = the first try).
        Returns False — the operation is permanently failed — when the
        attempt cap or the retry budget is exhausted.
        """
        policy = self.retry_policy
        if not policy.enabled or attempt >= policy.max_attempts:
            return False
        if self.retries_scheduled >= policy.retry_budget * max(1, self.first_attempts):
            self.retries_denied += 1
            return False
        delay = backoff_delay_s(policy, attempt + 1, self.retry_rng)
        self._retry_seq += 1
        heapq.heappush(
            self._retry_heap,
            (now_s + delay, self._retry_seq, type_index, attempt + 1),
        )
        self.retries_scheduled += 1
        return True

    def due_retries(self, t_s: float) -> List[Tuple[int, int]]:
        """Pop every queued retry due by ``t_s`` as (type, attempt)."""
        due: List[Tuple[int, int]] = []
        heap = self._retry_heap
        while heap and heap[0][0] <= t_s:
            _, _, type_index, attempt = heapq.heappop(heap)
            due.append((type_index, attempt))
        return due

    @property
    def retries_pending(self) -> int:
        return len(self._retry_heap)
