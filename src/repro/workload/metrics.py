"""Benchmark metrics: JOPS, response-time percentiles, pass/fail.

The benchmark's reported metric is "jAppServer2004 Operations per
Second" (JOPS); a run passes only if 90% of web requests complete in
under 2 seconds and 90% of RMI requests in under 5 seconds.  On a
tuned system the paper observes ~1.6 JOPS per unit of injection rate.

The resilience metrics (:func:`evaluate_resilience`) characterize a
*faulted* run the way the availability literature does: goodput
(client-visible successful completions) versus offered load, request
success rate, downtime, and — per fault — the time for goodput to
recover to its pre-fault level after the fault clears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.stats import percentile
from repro.workload.sut import RunResult


@dataclass(frozen=True)
class BenchmarkReport:
    """Steady-state summary of one run."""

    injection_rate: int
    jops: float
    jops_per_ir: float
    p90_web_s: Optional[float]
    p90_rmi_s: Optional[float]
    passed: bool
    utilization: float
    user_fraction: float
    kernel_fraction: float
    gc_fraction: float
    gc_count: int
    mean_gc_period_s: Optional[float]
    mean_gc_pause_ms: Optional[float]
    disk_utilization: float
    io_wait_mean_queue: float
    component_shares: Dict[str, float]
    rejected_ops: int = 0

    def summary_lines(self) -> List[str]:
        """Human-readable rows (used by examples and benches)."""
        lines = [
            f"IR {self.injection_rate}: {self.jops:.1f} JOPS "
            f"({self.jops_per_ir:.2f} JOPS/IR), "
            f"CPU {self.utilization * 100:.1f}% "
            f"(user {self.user_fraction * 100:.0f}% / "
            f"kernel {self.kernel_fraction * 100:.0f}%)",
            f"  response p90: web "
            f"{self._fmt(self.p90_web_s)} s, rmi {self._fmt(self.p90_rmi_s)} s "
            f"-> {'PASS' if self.passed else 'FAIL'}",
            f"  GC: {self.gc_count} collections, "
            f"period {self._fmt(self.mean_gc_period_s)} s, "
            f"pause {self._fmt(self.mean_gc_pause_ms)} ms, "
            f"{self.gc_fraction * 100:.2f}% of runtime",
            f"  disk: {self.disk_utilization * 100:.1f}% busy, "
            f"mean queue {self.io_wait_mean_queue:.1f}",
        ]
        return lines

    @staticmethod
    def _fmt(value: Optional[float]) -> str:
        return f"{value:.2f}" if value is not None else "n/a"


def evaluate_run(result: RunResult) -> BenchmarkReport:
    """Compute the steady-state benchmark report for a run."""
    cfg = result.config.workload
    t0, t1 = result.steady_window()
    steady_s = t1 - t0
    if steady_s <= 0:
        raise ValueError("run has no steady-state window")

    # Throughput.
    total_ops = 0
    web_rts: List[float] = []
    rmi_rts: List[float] = []
    for type_index, spec in enumerate(cfg.transactions):
        rts = result.steady_responses(type_index)
        total_ops += len(rts)
        if spec.protocol == "web":
            web_rts.extend(rts)
        else:
            rmi_rts.extend(rts)
    jops = total_ops / steady_s

    req = cfg.requirements
    p90_web = percentile(web_rts, req.quantile) if web_rts else None
    p90_rmi = percentile(rmi_rts, req.quantile) if rmi_rts else None
    rejected_total = sum(result.rejected)
    # Rejected operations are unbounded-response-time failures: a run
    # that sheds more than a sliver of its load cannot pass.
    reject_ok = rejected_total <= 0.005 * max(1, total_ops)
    passed = bool(
        (p90_web is None or p90_web <= req.web_deadline_s)
        and (p90_rmi is None or p90_rmi <= req.rmi_deadline_s)
        and total_ops > 0
        and reject_ok
    )

    # CPU accounting.
    utilization = result.timeline.mean_utilization(t0, t1)
    shares = result.timeline.component_shares(t0, t1)
    kernel_fraction = shares.get("kernel", 0.0)
    user_fraction = 1.0 - kernel_fraction

    # GC accounting over the steady window.
    steady_gcs = [e for e in result.gc_events if t0 <= e.start_time_s < t1]
    gc_count = len(steady_gcs)
    mean_period = None
    if gc_count >= 2:
        gaps = [
            b.start_time_s - a.start_time_s
            for a, b in zip(steady_gcs, steady_gcs[1:])
        ]
        mean_period = sum(gaps) / len(gaps)
    mean_pause = (
        sum(e.pause_ms for e in steady_gcs) / gc_count if gc_count else None
    )
    gc_fraction = sum(e.pause_ms for e in steady_gcs) / 1000.0 / steady_s

    return BenchmarkReport(
        injection_rate=cfg.injection_rate,
        jops=jops,
        jops_per_ir=jops / cfg.injection_rate,
        p90_web_s=p90_web,
        p90_rmi_s=p90_rmi,
        passed=passed,
        utilization=utilization,
        user_fraction=user_fraction,
        kernel_fraction=kernel_fraction,
        gc_fraction=gc_fraction,
        gc_count=gc_count,
        mean_gc_period_s=mean_period,
        mean_gc_pause_ms=mean_pause,
        disk_utilization=result.disk_utilization,
        io_wait_mean_queue=result.disk_mean_queue,
        component_shares=shares,
        rejected_ops=rejected_total,
    )


# ---------------------------------------------------------------------------
# Resilience metrics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResilienceReport:
    """Availability-oriented summary of one (possibly faulted) run."""

    #: Logical operations offered (first attempts, whole run).
    offered_ops: int
    #: Client-visible successful completions (whole run).
    successful_ops: int
    #: Operations that permanently failed (attempts exhausted,
    #: connection refused with no retry, shed with no retry).
    failed_ops: int
    #: Client-side timeouts observed (an op may time out repeatedly).
    timeout_ops: int
    #: Retry attempts injected by the driver.
    retry_attempts: int
    #: Arrivals shed by brownout (graceful degradation).
    shed_ops: int
    #: Completions of requests the client had already abandoned.
    zombie_completions: int
    #: Goodput over the steady window, ops/s.
    goodput: float
    #: Seconds the server was down.
    downtime_s: float
    #: successful / offered over the whole run.
    availability: float

    def summary_lines(self) -> List[str]:
        return [
            f"  offered {self.offered_ops} ops, "
            f"successful {self.successful_ops} "
            f"(availability {self.availability * 100:.2f}%)",
            f"  goodput {self.goodput:.1f} ops/s steady-state, "
            f"failed {self.failed_ops}, timeouts {self.timeout_ops}, "
            f"retries {self.retry_attempts}, shed {self.shed_ops}, "
            f"zombies {self.zombie_completions}",
            f"  downtime {self.downtime_s:.1f} s",
        ]


def goodput_series(
    result: RunResult, bucket_s: float = 1.0
) -> Tuple[List[float], List[float]]:
    """Client-visible successful completions per second, bucketed.

    Built from the response log (not the timeline) so abandoned
    requests that the server finished as zombies are excluded.
    """
    cfg = result.config.workload
    n_buckets = max(1, int(round(cfg.duration_s / bucket_s)))
    counts = [0] * n_buckets
    for per_type in result.responses:
        for t, _ in per_type:
            idx = min(n_buckets - 1, int(t / bucket_s))
            counts[idx] += 1
    times = [(i + 0.5) * bucket_s for i in range(n_buckets)]
    return times, [c / bucket_s for c in counts]


def evaluate_resilience(result: RunResult) -> ResilienceReport:
    """Compute the resilience summary for a run."""
    stats = result.resilience
    if stats is None:
        raise ValueError("run carries no resilience stats")
    t0, t1 = result.steady_window()
    steady_s = max(1e-9, t1 - t0)
    successful = sum(len(per_type) for per_type in result.responses)
    steady_ok = sum(
        len(result.steady_responses(k)) for k in range(len(result.responses))
    )
    offered = stats.total_offered
    return ResilienceReport(
        offered_ops=offered,
        successful_ops=successful,
        failed_ops=stats.total_failed,
        timeout_ops=stats.total_timeouts,
        retry_attempts=stats.total_retries,
        shed_ops=stats.total_shed,
        zombie_completions=stats.zombie_completions,
        goodput=steady_ok / steady_s,
        downtime_s=len(stats.down_ticks) * result.config.workload.tick_s,
        availability=successful / max(1, offered),
    )


def time_to_recover(
    result: RunResult,
    fault_end_s: float,
    baseline_goodput: float,
    bucket_s: float = 1.0,
    window_s: float = 5.0,
    threshold: float = 0.9,
) -> Optional[float]:
    """Seconds after ``fault_end_s`` until goodput is back to normal.

    Recovery is declared at the first post-fault instant where the
    trailing ``window_s`` moving average of goodput reaches
    ``threshold`` x ``baseline_goodput``.  Returns None if the run
    never recovers inside its measured duration.
    """
    times, values = goodput_series(result, bucket_s)
    per_window = max(1, int(round(window_s / bucket_s)))
    target = threshold * baseline_goodput
    for i, t in enumerate(times):
        if t < fault_end_s or i + 1 < per_window:
            continue
        window = values[i + 1 - per_window : i + 1]
        if sum(window) / per_window >= target:
            return t - fault_end_s
    return None
