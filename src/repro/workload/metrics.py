"""Benchmark metrics: JOPS, response-time percentiles, pass/fail.

The benchmark's reported metric is "jAppServer2004 Operations per
Second" (JOPS); a run passes only if 90% of web requests complete in
under 2 seconds and 90% of RMI requests in under 5 seconds.  On a
tuned system the paper observes ~1.6 JOPS per unit of injection rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.stats import percentile
from repro.workload.sut import RunResult


@dataclass(frozen=True)
class BenchmarkReport:
    """Steady-state summary of one run."""

    injection_rate: int
    jops: float
    jops_per_ir: float
    p90_web_s: Optional[float]
    p90_rmi_s: Optional[float]
    passed: bool
    utilization: float
    user_fraction: float
    kernel_fraction: float
    gc_fraction: float
    gc_count: int
    mean_gc_period_s: Optional[float]
    mean_gc_pause_ms: Optional[float]
    disk_utilization: float
    io_wait_mean_queue: float
    component_shares: Dict[str, float]
    rejected_ops: int = 0

    def summary_lines(self) -> List[str]:
        """Human-readable rows (used by examples and benches)."""
        lines = [
            f"IR {self.injection_rate}: {self.jops:.1f} JOPS "
            f"({self.jops_per_ir:.2f} JOPS/IR), "
            f"CPU {self.utilization * 100:.1f}% "
            f"(user {self.user_fraction * 100:.0f}% / "
            f"kernel {self.kernel_fraction * 100:.0f}%)",
            f"  response p90: web "
            f"{self._fmt(self.p90_web_s)} s, rmi {self._fmt(self.p90_rmi_s)} s "
            f"-> {'PASS' if self.passed else 'FAIL'}",
            f"  GC: {self.gc_count} collections, "
            f"period {self._fmt(self.mean_gc_period_s)} s, "
            f"pause {self._fmt(self.mean_gc_pause_ms)} ms, "
            f"{self.gc_fraction * 100:.2f}% of runtime",
            f"  disk: {self.disk_utilization * 100:.1f}% busy, "
            f"mean queue {self.io_wait_mean_queue:.1f}",
        ]
        return lines

    @staticmethod
    def _fmt(value: Optional[float]) -> str:
        return f"{value:.2f}" if value is not None else "n/a"


def evaluate_run(result: RunResult) -> BenchmarkReport:
    """Compute the steady-state benchmark report for a run."""
    cfg = result.config.workload
    t0, t1 = result.steady_window()
    steady_s = t1 - t0
    if steady_s <= 0:
        raise ValueError("run has no steady-state window")

    # Throughput.
    total_ops = 0
    web_rts: List[float] = []
    rmi_rts: List[float] = []
    for type_index, spec in enumerate(cfg.transactions):
        rts = result.steady_responses(type_index)
        total_ops += len(rts)
        if spec.protocol == "web":
            web_rts.extend(rts)
        else:
            rmi_rts.extend(rts)
    jops = total_ops / steady_s

    req = cfg.requirements
    p90_web = percentile(web_rts, req.quantile) if web_rts else None
    p90_rmi = percentile(rmi_rts, req.quantile) if rmi_rts else None
    rejected_total = sum(result.rejected)
    # Rejected operations are unbounded-response-time failures: a run
    # that sheds more than a sliver of its load cannot pass.
    reject_ok = rejected_total <= 0.005 * max(1, total_ops)
    passed = bool(
        (p90_web is None or p90_web <= req.web_deadline_s)
        and (p90_rmi is None or p90_rmi <= req.rmi_deadline_s)
        and total_ops > 0
        and reject_ok
    )

    # CPU accounting.
    utilization = result.timeline.mean_utilization(t0, t1)
    shares = result.timeline.component_shares(t0, t1)
    kernel_fraction = shares.get("kernel", 0.0)
    user_fraction = 1.0 - kernel_fraction

    # GC accounting over the steady window.
    steady_gcs = [e for e in result.gc_events if t0 <= e.start_time_s < t1]
    gc_count = len(steady_gcs)
    mean_period = None
    if gc_count >= 2:
        gaps = [
            b.start_time_s - a.start_time_s
            for a, b in zip(steady_gcs, steady_gcs[1:])
        ]
        mean_period = sum(gaps) / len(gaps)
    mean_pause = (
        sum(e.pause_ms for e in steady_gcs) / gc_count if gc_count else None
    )
    gc_fraction = sum(e.pause_ms for e in steady_gcs) / 1000.0 / steady_s

    return BenchmarkReport(
        injection_rate=cfg.injection_rate,
        jops=jops,
        jops_per_ir=jops / cfg.injection_rate,
        p90_web_s=p90_web,
        p90_rmi_s=p90_rmi,
        passed=passed,
        utilization=utilization,
        user_fraction=user_fraction,
        kernel_fraction=kernel_fraction,
        gc_fraction=gc_fraction,
        gc_count=gc_count,
        mean_gc_period_s=mean_period,
        mean_gc_pause_ms=mean_pause,
        disk_utilization=result.disk_utilization,
        io_wait_mean_queue=result.disk_mean_queue,
        component_shares=shares,
        rejected_ops=rejected_total,
    )
