"""Setup shim for environments without the ``wheel`` package.

The project is configured in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` on offline
machines where the PEP 517 editable path (which needs ``wheel``) is
unavailable.
"""

from setuptools import setup

setup()
