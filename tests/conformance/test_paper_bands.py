"""Golden-band tests: every headline figure of the paper, as a test.

The band table in :mod:`repro.conformance` is evaluated at the
standard benchmark scale (seed 2007) and each band becomes one test
case.  Bands waived for the EXPERIMENTS.md known gaps are
``xfail(strict=True)`` — if a gap silently closes, the stale waiver
fails the suite just as a regression on a clean band would, keeping
the test tier and the ``repro conform`` CLI gate in lockstep.

The cheap campaign (one workload run + 60 HPM windows + the idle-CPI
probe) is tier-1; the Figure 10 correlation campaign and the
large-pages ablation ride in the ``slow`` tier.
"""

import math

import pytest

from repro.conformance import (
    BANDS,
    CHEAP,
    CORRELATION,
    PAGES,
    Band,
    BandResult,
    ConformanceReport,
    bands_for,
    evaluate,
    known_gap_waivers,
    measure_cheap,
    measure_correlation,
    measure_pages,
)
from repro.experiments.common import bench_config


def band_params(cost):
    """One pytest param per band; waived bands are strict xfails."""
    params = []
    for band in bands_for(cost):
        marks = ()
        if band.waiver is not None:
            marks = pytest.mark.xfail(
                strict=True,
                reason=f"EXPERIMENTS.md known gap {band.waiver}: "
                f"{band.description}",
            )
        params.append(pytest.param(band, id=band.key, marks=marks))
    return params


@pytest.fixture(scope="module")
def config():
    return bench_config(seed=2007)


@pytest.fixture(scope="module")
def cheap_values(config):
    return measure_cheap(config, hw_windows=60)


@pytest.mark.parametrize("band", band_params(CHEAP))
def test_cheap_band(band, cheap_values):
    value = cheap_values[band.key]
    assert band.lo <= value <= band.hi, (
        f"{band.key} = {value:.4g} outside [{band.lo:g}, {band.hi:g}] "
        f"({band.description}; {band.paper_ref})"
    )


@pytest.mark.slow
class TestCorrelationBands:
    """Figure 10's shared-core campaign at its own defaults."""

    @pytest.fixture(scope="class")
    def corr_values(self, config):
        return measure_correlation(config)

    @pytest.mark.parametrize("band", band_params(CORRELATION))
    def test_band(self, band, corr_values):
        value = corr_values[band.key]
        assert band.lo <= value <= band.hi, (
            f"{band.key} = {value:.4g} outside [{band.lo:g}, {band.hi:g}] "
            f"({band.description}; {band.paper_ref})"
        )


@pytest.mark.slow
class TestPagesBands:
    """The Section 4.2.2 large-pages ablation."""

    @pytest.fixture(scope="class")
    def pages_values(self, config):
        return measure_pages(config)

    @pytest.mark.parametrize("band", band_params(PAGES))
    def test_band(self, band, pages_values):
        value = pages_values[band.key]
        assert band.lo <= value <= band.hi


class TestGateOnRealMeasurements:
    """The ``repro conform`` verdict itself, on the cheap campaign."""

    @pytest.fixture(scope="class")
    def report(self, config, cheap_values):
        return evaluate(config, include_slow=False, measurements=cheap_values)

    def test_gate_passes(self, report):
        assert report.passed, "\n".join(report.render_lines())

    def test_exactly_the_cheap_waivers_are_waived(self, report):
        waived = {r.band.waiver for r in report.waived()}
        expected = {b.waiver for b in bands_for(CHEAP) if b.waiver is not None}
        assert waived == expected

    def test_no_failures_or_stale_waivers(self, report):
        assert report.failures() == []
        assert report.stale_waivers() == []

    def test_slow_campaigns_listed_as_skipped(self, report):
        assert report.skipped_costs == [CORRELATION, PAGES]
        judged = {r.band.key for r in report.results}
        assert judged == {b.key for b in bands_for(CHEAP)}

    def test_json_document(self, report):
        doc = report.to_json_dict()
        assert doc["schema"] == "repro_conformance/1"
        assert doc["passed"] is True
        assert doc["seed"] == 2007
        assert len(doc["bands"]) == len(bands_for(CHEAP))


class TestBandTable:
    """Static sanity of the declarative table."""

    def test_keys_unique(self):
        keys = [b.key for b in BANDS]
        assert len(keys) == len(set(keys))

    def test_intervals_well_formed(self):
        for b in BANDS:
            assert b.lo <= b.hi, b.key
            assert b.description and b.paper_ref, b.key

    def test_costs_known(self):
        assert {b.cost for b in BANDS} == {CHEAP, CORRELATION, PAGES}

    def test_waivers_are_exactly_the_known_gaps(self):
        waivers = known_gap_waivers()
        assert set(waivers) == {1, 2, 3, 4}
        assert waivers[2] == "hw.target_mispredict_rate"
        assert waivers[1] == "corr.r_cond_mispredict_vs_cpi"
        assert waivers[4] == "corr.r_cond_mispredict_vs_branches"
        assert waivers[3] == "pages.dtlb_hit_gain"


class TestStrictWaiverSemantics:
    """The four statuses and the verdict they roll up to."""

    CLEAN = Band("k", "d", "ref", 0.0, 1.0)
    WAIVED = Band("k2", "d", "ref", 0.0, 1.0, waiver=9)

    def test_statuses(self):
        assert BandResult(self.CLEAN, 0.5).status == "pass"
        assert BandResult(self.CLEAN, 1.5).status == "FAIL"
        assert BandResult(self.WAIVED, 1.5).status == "xfail"
        assert BandResult(self.WAIVED, 0.5).status == "XPASS"

    def test_ok(self):
        assert BandResult(self.CLEAN, 0.5).ok
        assert not BandResult(self.CLEAN, 1.5).ok
        assert BandResult(self.WAIVED, 1.5).ok
        assert not BandResult(self.WAIVED, 0.5).ok

    def _report(self, config, values):
        return evaluate(config, include_slow=False, measurements=values)

    def test_stale_waiver_fails_the_gate(self, config):
        values = {b.key: self._mid(b) for b in bands_for(CHEAP)}
        # Every band in-band: the waived band becomes a stale waiver.
        report = self._report(config, values)
        assert not report.passed
        assert [r.band.waiver for r in report.stale_waivers()] == [2]

    def test_regression_fails_the_gate(self, config):
        values = {
            b.key: (self._mid(b) if b.waiver is None else b.hi + 1.0)
            for b in bands_for(CHEAP)
        }
        values["hw.cpi"] = 99.0
        report = self._report(config, values)
        assert not report.passed
        assert [r.band.key for r in report.failures()] == ["hw.cpi"]

    def test_all_expected_shapes_pass(self, config):
        values = {
            b.key: (self._mid(b) if b.waiver is None else b.hi + 1.0)
            for b in bands_for(CHEAP)
        }
        report = self._report(config, values)
        assert report.passed
        lines = "\n".join(report.render_lines())
        assert "PASS" in lines and "known gap 2" in lines

    @staticmethod
    def _mid(band):
        if math.isinf(band.lo) or math.isinf(band.hi):
            raise AssertionError("bands must be finite")
        return (band.lo + band.hi) / 2.0
