"""Tests for workload presets and the workload-to-CPU bridge."""

import dataclasses

import pytest

from repro.config import SamplingConfig
from repro.cpu.sources import DataSource
from repro.workload.bridge import UniformPhaseSchedule, WorkloadPhaseSchedule
from repro.workload.presets import (
    jas2004,
    jbb2000_like,
    jvm98_like,
    scaled_for_tests,
    tpcw_like,
)
from repro.util.rng import RngFactory


class TestPresets:
    def test_jas2004_defaults(self):
        cfg = jas2004(ir=40)
        assert cfg.workload.injection_rate == 40
        assert cfg.jvm.heap_mb == 1024
        assert cfg.jvm.heap_large_pages

    def test_jbb2000_is_a_simple_benchmark(self):
        cfg = jbb2000_like()
        assert len(cfg.workload.transactions) == 1
        spec = cfg.workload.transactions[0]
        assert spec.cpu_ms["db2"] == 0.0 and spec.cpu_ms["web"] == 0.0
        assert cfg.jvm.heap_mb < 512
        assert cfg.jvm.warm_share > 0.8  # hot profile

    def test_jvm98_even_smaller(self):
        cfg = jvm98_like()
        assert cfg.jvm.heap_mb <= 64
        assert cfg.workload.transactions[0].db_queries == 0.0

    def test_tpcw_has_heavy_modified_sharing(self):
        cfg = tpcw_like()
        assert cfg.workload.sharing.modified_fraction > 0.3
        base = jas2004()
        assert (
            cfg.workload.transactions[0].shared_intensity
            > base.workload.transactions[0].shared_intensity * 3
        )

    def test_scaled_for_tests_shrinks(self):
        cfg = scaled_for_tests(jas2004())
        assert cfg.workload.duration_s <= 240.0
        assert cfg.jvm.n_jited_methods <= 500

    def test_baseline_runs_are_stable(self):
        """The small-heap presets must survive their whole run without
        exhausting the heap (regression: queue explosion under GC)."""
        from repro.workload.sut import SystemUnderTest
        from repro.workload.metrics import evaluate_run

        for preset in (jbb2000_like(duration_s=180.0), jvm98_like(duration_s=150.0)):
            result = SystemUnderTest(preset).run()
            report = evaluate_run(result)
            assert report.jops > 0
            assert report.gc_count > 3  # small heaps collect often


class TestWorkloadPhaseSchedule:
    @pytest.fixture(scope="class")
    def schedule(self, quick_run, quick_registry, quick_space):
        return WorkloadPhaseSchedule(
            quick_run, quick_registry, quick_space, RngFactory(3)
        )

    def test_descriptor_fractions_sum_to_one(self, schedule):
        for idx in range(0, 50, 7):
            descriptor = schedule.descriptor_for(idx)
            assert sum(f for _, f in descriptor.slices) == pytest.approx(1.0)

    def test_kernel_excluded_by_default(self, schedule):
        for idx in range(0, 30, 3):
            descriptor = schedule.descriptor_for(idx)
            names = {p.name for p, _ in descriptor.slices}
            assert "kernel" not in names

    def test_kernel_included_when_requested(
        self, quick_run, quick_registry, quick_space
    ):
        schedule = WorkloadPhaseSchedule(
            quick_run, quick_registry, quick_space, RngFactory(3),
            include_kernel=True,
        )
        names = {
            p.name
            for idx in range(10)
            for p, _ in schedule.descriptor_for(idx).slices
        }
        assert "kernel" in names

    def test_gc_windows_found_and_flagged(self, schedule):
        gc_indices = schedule.gc_window_indices(max_events=3)
        assert gc_indices
        descriptor = schedule.descriptor_for(gc_indices[0])
        assert descriptor.gc_fraction > 0.3
        names = {p.name for p, _ in descriptor.slices}
        assert "gc_mark" in names

    def test_window_tick_round_trip(self, schedule):
        tick = schedule.tick_for_window(17)
        assert schedule.window_for_tick(tick) == 17

    def test_wraps_past_end_of_run(self, schedule, quick_run):
        huge = len(quick_run.timeline.records) * 3
        descriptor = schedule.descriptor_for(huge)
        assert descriptor.slices  # wrapped into the steady region

    def test_intensity_blend_reflects_mix(self, schedule, quick_run):
        """Windows exist with differing transaction mixes, producing
        differing intensities (checked indirectly via larx rates)."""
        rates = set()
        for idx in range(0, 60, 5):
            descriptor = schedule.descriptor_for(idx)
            for profile, _ in descriptor.slices:
                if profile.name == "was_jited":
                    rates.add(round(profile.larx_per_instr, 8))
        assert len(rates) > 5


class TestUniformSchedule:
    def test_static_composition(self, quick_registry, quick_space):
        schedule = UniformPhaseSchedule(
            quick_registry, quick_space, RngFactory(4)
        )
        descriptor = schedule.descriptor_for(0)
        names = {p.name for p, _ in descriptor.slices}
        assert names == {"was_jited", "was_nonjited", "web", "db2"}
        assert sum(f for _, f in descriptor.slices) == pytest.approx(1.0)
