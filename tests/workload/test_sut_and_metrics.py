"""Integration tests for the SUT tick loop and benchmark metrics.

These exercise the paper's high-level calibration: JOPS/IR ~1.6,
~90% utilization at IR 40 with ~80/20 user/kernel, GC every 25-28 s
with 300-400 ms pauses at ~1.3% of runtime, and pass/fail behavior.
"""

import pytest

from repro.workload.metrics import evaluate_run
from repro.workload.timeline import COMPONENTS


@pytest.fixture(scope="module")
def report(quick_run):
    return evaluate_run(quick_run)


class TestThroughput:
    def test_jops_per_ir(self, report):
        assert report.jops_per_ir == pytest.approx(1.6, abs=0.15)

    def test_run_passes_deadlines(self, report):
        assert report.passed
        assert report.p90_web_s < 2.0
        assert report.p90_rmi_s < 5.0


class TestUtilization:
    def test_load_level_at_ir40(self, report):
        assert 0.82 <= report.utilization <= 0.97

    def test_user_kernel_split(self, report):
        assert report.kernel_fraction == pytest.approx(0.20, abs=0.06)


class TestGcBehavior:
    def test_gc_period_and_pause(self, report):
        assert report.mean_gc_period_s == pytest.approx(26.5, abs=4.0)
        assert 250 <= report.mean_gc_pause_ms <= 450

    def test_gc_fraction_small(self, report):
        assert report.gc_fraction < 0.02


class TestComponentShares:
    def test_was_twice_web_plus_db2(self, report):
        shares = report.component_shares
        was = shares["was_jited"] + shares["was_nonjited"]
        assert was / (shares["web"] + shares["db2"]) == pytest.approx(2.0, abs=0.4)

    def test_shares_sum_to_one(self, report):
        assert sum(report.component_shares.values()) == pytest.approx(1.0)


class TestTimelineIntegrity:
    def test_tick_count(self, quick_run):
        cfg = quick_run.config.workload
        assert len(quick_run.timeline) == int(cfg.duration_s / cfg.tick_s)

    def test_busy_never_exceeds_capacity(self, quick_run):
        cap = quick_run.timeline.capacity_ms_per_tick
        for record in quick_run.timeline.records:
            assert record.busy_ms <= cap + 1e-6
            assert record.idle_ms >= -1e-6

    def test_cpu_by_type_consistent_with_components(self, quick_run):
        for record in quick_run.timeline.records[::100]:
            assert sum(record.cpu_ms_by_type) == pytest.approx(
                sum(record.cpu_ms_by_component), rel=1e-6, abs=1e-6
            )

    def test_heap_sawtooth(self, quick_run):
        """Heap usage rises between GCs and drops at collections."""
        _, values = quick_run.timeline.heap_series(bucket_s=1.0)
        peak = max(values)
        trough = min(v for v in values[60:])  # after ramp
        assert peak > trough * 1.5

    def test_completions_match_responses(self, quick_run):
        total_completions = sum(
            sum(r.completions) for r in quick_run.timeline.records
        )
        total_responses = sum(len(rs) for rs in quick_run.responses)
        assert total_completions == total_responses

    def test_throughput_series_shape(self, quick_run):
        times, series = quick_run.timeline.throughput_series(bucket_s=10.0)
        assert len(series) == len(quick_run.timeline.tx_names)
        assert all(len(s) == len(times) for s in series)


class TestDeterminism:
    def test_same_seed_same_run(self, quick_config, quick_run):
        from repro.workload.sut import SystemUnderTest

        other = SystemUnderTest(quick_config).run()
        assert other.gc_events == quick_run.gc_events
        assert other.timeline.records[1000] == quick_run.timeline.records[1000]
        assert other.responses[0][:50] == quick_run.responses[0][:50]


class TestAdmissionControl:
    def test_overloaded_sut_sheds_load_and_fails(self):
        """With two saturated hard disks the SUT rejects work instead
        of growing without bound, and the run fails its deadlines —
        the paper's 2-disk observation, minus the crash."""
        import dataclasses

        from repro.config import DiskConfig
        from repro.workload.presets import jas2004
        from repro.workload.sut import SystemUnderTest

        cfg = jas2004(duration_s=240.0)
        cfg = dataclasses.replace(
            cfg,
            workload=dataclasses.replace(
                cfg.workload, disk=DiskConfig.hard_disks(2)
            ),
        )
        result = SystemUnderTest(cfg).run()
        report = evaluate_run(result)
        assert sum(result.rejected) > 0
        assert not report.passed
        # The heap survived the overload.
        assert result.final_heap_used <= cfg.jvm.heap_mb * 1024 * 1024
