"""Tests for the fault-injection runtime (schedule, backoff, retry)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FaultEvent, RetryPolicy, WorkloadConfig
from repro.experiments.supervisor import SupervisorPolicy
from repro.util.units import MB
from repro.workload.driver import Driver
from repro.workload.faults import (
    NO_FAULTS,
    FaultModifiers,
    FaultSchedule,
    ResilienceTracker,
    backoff_delay_s,
)


class TestFaultEvent:
    def test_valid_event(self):
        event = FaultEvent(kind="db_slowdown", start_s=10.0, duration_s=5.0)
        assert event.end_s == 15.0
        assert not event.active_at(9.9)
        assert event.active_at(10.0)
        assert event.active_at(14.9)
        assert not event.active_at(15.0)  # half-open interval

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor_strike", start_s=0.0, duration_s=1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="tier_crash", start_s=-1.0, duration_s=1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="tier_crash", start_s=0.0, duration_s=0.0)

    def test_net_loss_magnitude_is_probability(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="net_loss", start_s=0.0, duration_s=1.0, magnitude=1.5)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(
                kind="db_slowdown", start_s=0.0, duration_s=1.0, magnitude=-2.0
            )


class TestFaultSchedule:
    def test_empty_schedule_is_inert(self):
        schedule = FaultSchedule(())
        assert not schedule.active
        assert schedule.modifiers_at(0.0) is NO_FAULTS

    def test_neutral_before_during_after(self):
        schedule = FaultSchedule(
            (FaultEvent(kind="db_slowdown", start_s=10.0, duration_s=5.0, magnitude=3.0),)
        )
        assert schedule.modifiers_at(5.0) is NO_FAULTS
        during = schedule.modifiers_at(12.0)
        assert during.db_cpu_factor == 3.0
        assert during.db_miss_factor == 3.0
        assert not during.neutral
        # Past the horizon the scan short-circuits to the shared object.
        assert schedule.modifiers_at(15.0) is NO_FAULTS
        assert schedule.modifiers_at(1e9) is NO_FAULTS

    def test_overlapping_factors_compound(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="db_slowdown", start_s=0.0, duration_s=10.0, magnitude=2.0),
                FaultEvent(kind="db_slowdown", start_s=5.0, duration_s=10.0, magnitude=3.0),
            )
        )
        assert schedule.modifiers_at(2.0).db_cpu_factor == 2.0
        assert schedule.modifiers_at(7.0).db_cpu_factor == 6.0
        assert schedule.modifiers_at(12.0).db_cpu_factor == 3.0

    def test_net_loss_saturates(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="net_loss", start_s=0.0, duration_s=10.0, magnitude=0.5),
                FaultEvent(kind="net_loss", start_s=0.0, duration_s=10.0, magnitude=0.5),
            )
        )
        assert schedule.modifiers_at(1.0).net_loss_p == pytest.approx(0.75)

    def test_gc_pressure_sums(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="gc_pressure", start_s=0.0, duration_s=10.0, magnitude=100.0),
                FaultEvent(kind="gc_pressure", start_s=0.0, duration_s=10.0, magnitude=50.0),
            )
        )
        assert schedule.modifiers_at(1.0).live_extra_bytes == 150 * MB

    def test_tier_crash_targets(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="tier_crash", start_s=0.0, duration_s=10.0),
                FaultEvent(kind="tier_crash", start_s=0.0, duration_s=10.0, target=2),
            )
        )
        mods = schedule.modifiers_at(1.0)
        assert mods.server_down
        assert mods.blades_down == frozenset({2})

    def test_clear_times(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="db_slowdown", start_s=0.0, duration_s=5.0),
                FaultEvent(kind="disk_degraded", start_s=2.0, duration_s=3.0),
                FaultEvent(kind="tier_crash", start_s=10.0, duration_s=10.0),
            )
        )
        assert schedule.clear_times() == [5.0, 20.0]

    def test_neutral_modifiers_equal_no_faults(self):
        assert FaultModifiers().neutral
        assert FaultModifiers(db_cpu_factor=2.0).neutral is False


class TestFaultScheduleEdgeCases:
    """Boundary semantics the chaos/robustness work leans on."""

    def test_back_to_back_windows_never_compound(self):
        # One event's end is the next one's start: the half-open
        # interval [start, end) means exactly one is active at the seam.
        schedule = FaultSchedule(
            (
                FaultEvent(kind="db_slowdown", start_s=0.0, duration_s=5.0, magnitude=2.0),
                FaultEvent(kind="db_slowdown", start_s=5.0, duration_s=5.0, magnitude=3.0),
            )
        )
        assert schedule.modifiers_at(4.999).db_cpu_factor == 2.0
        assert schedule.modifiers_at(5.0).db_cpu_factor == 3.0
        assert schedule.modifiers_at(9.999).db_cpu_factor == 3.0
        assert schedule.modifiers_at(10.0) is NO_FAULTS

    def test_event_nested_inside_another(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="db_slowdown", start_s=0.0, duration_s=20.0, magnitude=2.0),
                FaultEvent(kind="db_slowdown", start_s=5.0, duration_s=5.0, magnitude=4.0),
            )
        )
        assert schedule.modifiers_at(2.0).db_cpu_factor == 2.0
        assert schedule.modifiers_at(7.0).db_cpu_factor == 8.0
        # The inner window closing restores the outer factor alone.
        assert schedule.modifiers_at(10.0).db_cpu_factor == 2.0

    def test_identical_overlapping_events_compound(self):
        event = FaultEvent(kind="db_slowdown", start_s=0.0, duration_s=10.0, magnitude=2.0)
        schedule = FaultSchedule((event, event))
        assert schedule.modifiers_at(1.0).db_cpu_factor == 4.0

    def test_fault_active_from_time_zero(self):
        # A fault that begins before warmup ends must already be live
        # at t=0 — warmup is an observation window, not a grace period.
        schedule = FaultSchedule(
            (FaultEvent(kind="tier_crash", start_s=0.0, duration_s=30.0),)
        )
        assert schedule.modifiers_at(0.0).server_down
        assert schedule.active

    def test_overlapping_different_kinds_combine_independently(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="db_slowdown", start_s=0.0, duration_s=10.0, magnitude=2.0),
                FaultEvent(kind="gc_pressure", start_s=5.0, duration_s=10.0, magnitude=50.0),
            )
        )
        early = schedule.modifiers_at(2.0)
        assert early.db_cpu_factor == 2.0
        assert early.live_extra_bytes == 0
        both = schedule.modifiers_at(7.0)
        assert both.db_cpu_factor == 2.0
        assert both.live_extra_bytes == 50 * MB
        late = schedule.modifiers_at(12.0)
        assert late.db_cpu_factor == 1.0
        assert late.live_extra_bytes == 50 * MB

    def test_clear_times_for_nested_events_deduplicated_and_sorted(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="db_slowdown", start_s=0.0, duration_s=20.0),
                FaultEvent(kind="net_loss", start_s=5.0, duration_s=15.0, magnitude=0.1),
                FaultEvent(kind="disk_degraded", start_s=1.0, duration_s=2.0),
            )
        )
        assert schedule.clear_times() == [3.0, 20.0]

    def test_zero_duration_window_cannot_exist(self):
        # Belt and braces with TestFaultEvent: the schedule can never
        # hold a window that is active at no instant.
        with pytest.raises(ValueError):
            FaultSchedule(
                (FaultEvent(kind="db_slowdown", start_s=3.0, duration_s=0.0),)
            )


class TestBackoff:
    def policy(self, **kwargs):
        defaults = dict(
            enabled=True,
            backoff_base_s=1.0,
            backoff_factor=2.0,
            backoff_cap_s=8.0,
            jitter=0.0,
        )
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_exponential_without_jitter(self):
        policy = self.policy()
        rng = random.Random(0)
        assert backoff_delay_s(policy, 2, rng) == 1.0
        assert backoff_delay_s(policy, 3, rng) == 2.0
        assert backoff_delay_s(policy, 4, rng) == 4.0

    def test_cap(self):
        policy = self.policy()
        rng = random.Random(0)
        assert backoff_delay_s(policy, 10, rng) == 8.0

    def test_jitter_bounds(self):
        policy = self.policy(jitter=0.5)
        rng = random.Random(7)
        delays = [backoff_delay_s(policy, 3, rng) for _ in range(500)]
        assert all(1.0 <= d <= 3.0 for d in delays)  # 2 s x [0.5, 1.5]
        assert max(delays) > 2.5 and min(delays) < 1.5

    def test_jittered_delay_at_cap_never_exceeds_cap(self):
        # Regression: the clamp used to run before the jitter multiply,
        # so a capped delay could overshoot the cap by the jitter
        # fraction (up to 12 s here).
        policy = self.policy(jitter=0.5)
        rng = random.Random(11)
        delays = [backoff_delay_s(policy, 10, rng) for _ in range(2000)]
        assert max(delays) <= policy.backoff_cap_s
        # Upward jitter at the cap saturates rather than disappearing.
        assert sum(d == policy.backoff_cap_s for d in delays) > 500

    @given(
        base=st.floats(0.01, 10.0),
        factor=st.floats(1.0, 4.0),
        cap=st.floats(0.01, 30.0),
        jitter=st.floats(0.0, 0.99),
        attempt=st.integers(1, 40),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_property_no_drawn_delay_exceeds_cap(
        self, base, factor, cap, jitter, attempt, seed
    ):
        """No draw, under any policy shape, may exceed ``backoff_cap_s``.

        Exercised for both consumers of the helper: the Driver's
        ``RetryPolicy`` and the sweep supervisor's ``SupervisorPolicy``
        (duck-typed field contract, see tests/experiments/test_supervisor.py).
        """
        rng = random.Random(seed)
        driver_policy = self.policy(
            backoff_base_s=base, backoff_factor=factor, backoff_cap_s=cap, jitter=jitter
        )
        supervisor_policy = SupervisorPolicy(
            backoff_base_s=base, backoff_factor=factor, backoff_cap_s=cap, jitter=jitter
        )
        for policy in (driver_policy, supervisor_policy):
            for _ in range(20):
                delay = backoff_delay_s(policy, attempt, rng)
                assert 0.0 <= delay <= policy.backoff_cap_s


class TestDriverRetry:
    def make_driver(self, **policy_kwargs):
        defaults = dict(
            enabled=True,
            max_attempts=3,
            backoff_base_s=1.0,
            backoff_factor=2.0,
            backoff_cap_s=8.0,
            jitter=0.0,
            retry_budget=0.5,
        )
        defaults.update(policy_kwargs)
        config = WorkloadConfig(duration_s=100.0)
        return Driver(
            config,
            random.Random(0),
            retry_policy=RetryPolicy(**defaults),
            retry_rng=random.Random(1),
        )

    def test_disabled_policy_never_schedules(self):
        config = WorkloadConfig(duration_s=100.0)
        driver = Driver(config, random.Random(0))
        assert driver.schedule_retry(0, 1, 0.0) is False
        assert driver.retries_pending == 0

    def test_attempt_cap(self):
        driver = self.make_driver()
        driver.first_attempts = 100
        assert driver.schedule_retry(0, 1, 0.0) is True
        assert driver.schedule_retry(0, 2, 0.0) is True
        # Attempt 3 of max_attempts=3 has no retries left.
        assert driver.schedule_retry(0, 3, 0.0) is False

    def test_retry_budget(self):
        driver = self.make_driver(retry_budget=0.1)
        driver.first_attempts = 20  # budget: 2 retries
        assert driver.schedule_retry(0, 1, 0.0) is True
        assert driver.schedule_retry(1, 1, 0.0) is True
        assert driver.schedule_retry(2, 1, 0.0) is False
        assert driver.retries_denied == 1

    def test_due_retries_pop_in_time_order(self):
        driver = self.make_driver()
        driver.first_attempts = 100
        driver.schedule_retry(0, 2, 0.0)  # due at 2.0 (second retry)
        driver.schedule_retry(1, 1, 0.0)  # due at 1.0 (first retry)
        assert driver.retries_pending == 2
        assert driver.due_retries(0.5) == []
        assert driver.due_retries(1.5) == [(1, 2)]
        assert driver.due_retries(2.5) == [(0, 3)]
        assert driver.retries_pending == 0

    def test_retries_do_not_count_as_first_attempts(self):
        driver = self.make_driver()
        driver.first_attempts = 10
        driver.schedule_retry(0, 1, 0.0)
        driver.due_retries(100.0)
        assert driver.first_attempts == 10


class TestResilienceTracker:
    def test_freeze_totals(self):
        tracker = ResilienceTracker(2)
        tracker.offered[0] = 5
        tracker.offered[1] = 3
        tracker.failed[1] = 2
        tracker.retries[0] = 4
        tracker.down_ticks.append(7)
        stats = tracker.freeze()
        assert stats.total_offered == 8
        assert stats.total_failed == 2
        assert stats.total_retries == 4
        assert stats.down_ticks == (7,)
