"""Tests for requests and the Poisson sampler."""

import random

import pytest

from repro.config import WorkloadConfig
from repro.workload.transactions import Request, poisson


@pytest.fixture()
def spec():
    return WorkloadConfig().transactions[0]


class TestPoisson:
    def test_zero_rate(self):
        assert poisson(random.Random(0), 0.0) == 0

    def test_mean_approximates_lambda(self):
        rng = random.Random(1)
        lam = 3.5
        draws = [poisson(rng, lam) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(lam, rel=0.05)

    def test_non_negative(self):
        rng = random.Random(2)
        assert all(poisson(rng, 0.3) >= 0 for _ in range(100))

    def test_small_lambda_draws_bit_compatible(self):
        """The log-space rewrite must not perturb the small-rate draws
        every shipped config produces (golden runs depend on them)."""

        def knuth(rng, lam):
            threshold = pow(2.718281828459045, -lam)
            k, p = 0, 1.0
            while True:
                p *= rng.random()
                if p <= threshold:
                    return k
                k += 1

        ours, reference = random.Random(3), random.Random(3)
        assert [poisson(ours, 2.5) for _ in range(2000)] == [
            knuth(reference, 2.5) for _ in range(2000)
        ]


class TestPoissonLargeLambda:
    """Regression: Knuth's product method underflows for lam >~ 745
    (``exp(-lam)`` is 0.0), returning a lam-independent count of ~700
    for *any* larger rate — latent breakage for high-IR scaling
    configs."""

    def test_mean_and_variance_at_lambda_800(self):
        rng = random.Random(11)
        lam = 800.0
        draws = [poisson(rng, lam) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert mean == pytest.approx(lam, rel=0.02)
        assert var == pytest.approx(lam, rel=0.15)

    def test_samples_track_lambda_beyond_underflow(self):
        # exp(-lam) underflows for both rates; the old sampler returned
        # the same garbage distribution for each.
        rng = random.Random(7)
        mean_800 = sum(poisson(rng, 800.0) for _ in range(400)) / 400
        mean_1600 = sum(poisson(rng, 1600.0) for _ in range(400)) / 400
        assert mean_800 == pytest.approx(800.0, rel=0.05)
        assert mean_1600 == pytest.approx(1600.0, rel=0.05)

    def test_mid_range_lambda_unaffected_by_switchover(self):
        rng = random.Random(13)
        lam = 200.0
        draws = [poisson(rng, lam) for _ in range(2000)]
        assert sum(draws) / len(draws) == pytest.approx(lam, rel=0.03)


class TestRequest:
    def make(self, spec, io_count=2, seed=3):
        return Request(0, spec, arrival_s=10.0, rng=random.Random(seed), io_count=io_count)

    def test_demand_jittered_around_spec(self, spec):
        demands = [self.make(spec, seed=i).total_cpu_ms for i in range(200)]
        mean = sum(demands) / len(demands)
        assert mean == pytest.approx(spec.total_cpu_ms, rel=0.1)

    def test_consume_until_done(self, spec):
        request = self.make(spec, io_count=0)
        request.consume(request.total_cpu_ms + 1.0)
        assert request.done
        assert request.remaining_cpu_ms == 0.0

    def test_io_points_interrupt(self, spec):
        request = self.make(spec, io_count=2)
        hit = request.consume(request.total_cpu_ms + 1.0)
        assert hit
        assert request.in_io
        assert not request.done
        with pytest.raises(RuntimeError):
            request.consume(1.0)
        request.io_complete()
        assert not request.in_io

    def test_all_io_points_eventually_consumed(self, spec):
        request = self.make(spec, io_count=3)
        for _ in range(10):
            if request.done:
                break
            if request.in_io:
                request.io_complete()
            else:
                request.consume(request.total_cpu_ms)
        assert request.done

    def test_response_time(self, spec):
        request = self.make(spec)
        assert request.response_time_s(10.5) == pytest.approx(0.5)

    def test_io_complete_requires_waiting(self, spec):
        request = self.make(spec, io_count=0)
        with pytest.raises(RuntimeError):
            request.io_complete()

    def test_negative_consume_rejected(self, spec):
        with pytest.raises(ValueError):
            self.make(spec).consume(-1.0)

    def test_cpu_until_next_io_none_when_exhausted(self, spec):
        request = self.make(spec, io_count=0)
        assert request.cpu_until_next_io() is None
