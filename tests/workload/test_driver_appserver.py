"""Tests for the driver, web server and application server."""

import random

import pytest

from repro.config import WorkloadConfig
from repro.workload.appserver import AppServer
from repro.workload.driver import Driver
from repro.workload.timeline import COMPONENTS
from repro.workload.transactions import Request
from repro.workload.webserver import WebServer


@pytest.fixture()
def config():
    return WorkloadConfig(duration_s=100.0, ramp_up_s=20.0, ramp_down_s=10.0)


class TestDriver:
    def test_arrival_rate_matches_ir(self, config):
        driver = Driver(config, random.Random(0))
        total = 0
        n_ticks = 3000
        for i in range(n_ticks):
            total += sum(driver.arrivals(50.0))  # steady region
        rate = total / (n_ticks * config.tick_s)
        assert rate == pytest.approx(config.target_ops_per_s, rel=0.05)

    def test_ramp_envelope(self, config):
        driver = Driver(config, random.Random(0))
        assert driver.load_factor(0.0) == 0.0
        assert driver.load_factor(10.0) == pytest.approx(0.5)
        assert driver.load_factor(50.0) == 1.0
        assert driver.load_factor(95.0) == pytest.approx(0.5)

    def test_ramp_edges(self, config):
        driver = Driver(config, random.Random(0))
        assert driver.load_factor(0.0) == 0.0
        # Exactly at the ramp-up boundary the envelope is already full.
        assert driver.load_factor(config.ramp_up_s) == 1.0
        assert driver.load_factor(config.ramp_up_s - 1e-9) < 1.0
        down_start = config.duration_s - config.ramp_down_s
        assert driver.load_factor(down_start) == 1.0
        assert driver.load_factor(down_start + 1e-6) < 1.0
        assert driver.load_factor(config.duration_s) == 0.0

    def test_no_ramp_down(self):
        config = WorkloadConfig(duration_s=100.0, ramp_up_s=20.0, ramp_down_s=0.0)
        driver = Driver(config, random.Random(0))
        assert driver.load_factor(99.9) == 1.0
        assert driver.load_factor(100.0) == 1.0

    def test_no_ramp_up(self):
        config = WorkloadConfig(duration_s=100.0, ramp_up_s=0.0, ramp_down_s=10.0)
        driver = Driver(config, random.Random(0))
        assert driver.load_factor(0.0) == 1.0

    def test_arrivals_count_first_attempts_only(self, config):
        driver = Driver(config, random.Random(0))
        total = sum(sum(driver.arrivals(50.0)) for _ in range(100))
        assert driver.first_attempts == total
        assert total > 0
        # Retries (when a policy is active) never pass through arrivals.
        assert driver.due_retries(1e9) == []
        assert driver.first_attempts == total

    def test_mix_follows_shares(self, config):
        driver = Driver(config, random.Random(1))
        counts = [0] * len(config.transactions)
        for _ in range(20000):
            for k, n in enumerate(driver.arrivals(50.0)):
                counts[k] += n
        total = sum(counts)
        for k, spec in enumerate(config.transactions):
            assert counts[k] / total == pytest.approx(spec.share, abs=0.02)


class TestWebServer:
    def test_routing_counts_by_protocol(self, config):
        web = WebServer(random.Random(2))
        for spec in config.transactions:
            web.route(spec)
        assert web.web_requests == 3  # Browse, Purchase, Manage
        assert web.rmi_requests == 1  # WorkOrder

    def test_overhead_scales_by_protocol(self, config):
        web = WebServer(random.Random(3))
        http = config.transactions[0]
        rmi = next(t for t in config.transactions if t.protocol == "rmi")
        http_overheads = [web.response_overhead_s(http) for _ in range(100)]
        rmi_overheads = [web.response_overhead_s(rmi) for _ in range(100)]
        assert sum(http_overheads) > sum(rmi_overheads)


class TestAppServer:
    def make_request(self, config, seed=0, io_count=0):
        return Request(0, config.transactions[0], 0.0, random.Random(seed), io_count)

    def test_serves_and_completes(self, config):
        server = AppServer(config, n_cores=4)
        request = self.make_request(config)
        server.admit(request)
        completed, ios, by_comp, by_type, used = server.serve(1000.0)
        assert completed == [request]
        assert used == pytest.approx(request.total_cpu_ms)
        assert sum(by_comp) == pytest.approx(used)
        assert by_type[0] == pytest.approx(used)

    def test_component_attribution_follows_spec(self, config):
        server = AppServer(config, n_cores=4)
        server.admit(self.make_request(config))
        _, _, by_comp, _, used = server.serve(1000.0)
        spec = config.transactions[0]
        for i, name in enumerate(COMPONENTS):
            expected = spec.cpu_ms.get(name, 0.0) / spec.total_cpu_ms
            assert by_comp[i] / used == pytest.approx(expected, rel=1e-6)

    def test_thread_pool_limits_concurrency(self):
        config = WorkloadConfig(thread_pool=2)
        server = AppServer(config, n_cores=4)
        for i in range(5):
            server.admit(self.make_request(config, seed=i))
        # A tiny quantum: only the two pooled requests make progress.
        server.serve(0.001)
        assert len(server.running) == 2
        assert len(server.accept_queue) == 3

    def test_io_blocking(self, config):
        server = AppServer(config, n_cores=4)
        request = self.make_request(config, io_count=1)
        server.admit(request)
        completed, ios, *_ = server.serve(1000.0)
        assert not completed
        assert ios == [request]
        assert server.io_blocked == 1
        request.io_complete()  # the disk model does this on completion
        server.resume(request)
        assert server.io_blocked == 0
        completed, *_ = server.serve(1000.0)
        assert completed == [request]

    def test_capacity_is_respected(self, config):
        server = AppServer(config, n_cores=4)
        for i in range(20):
            server.admit(self.make_request(config, seed=i))
        _, _, _, _, used = server.serve(50.0)
        assert used <= 50.0 + 1e-6

    def test_processor_sharing_fairness(self, config):
        """Equal requests make similar progress under sharing."""
        server = AppServer(config, n_cores=4)
        a = self.make_request(config, seed=1)
        b = self.make_request(config, seed=1)
        server.admit(a)
        server.admit(b)
        server.serve(10.0)
        assert a.consumed_cpu_ms == pytest.approx(b.consumed_cpu_ms, rel=0.01)
