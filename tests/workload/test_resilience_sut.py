"""End-to-end tests of the fault/resilience hooks in the SUT loop."""

import dataclasses

import pytest

from repro.config import (
    DegradationPolicy,
    FaultConfig,
    FaultEvent,
    RetryPolicy,
)
from repro.workload.presets import jas2004
from repro.workload.sut import SystemUnderTest


def small_config(seed=5, **fault_kwargs):
    config = jas2004(duration_s=120.0, seed=seed)
    if fault_kwargs:
        config = dataclasses.replace(config, faults=FaultConfig(**fault_kwargs))
    return config


def successes(result):
    return sum(len(per_type) for per_type in result.responses)


#: Retry policy whose backoff ladder outlasts the 10 s outages below.
GENEROUS_RETRY = RetryPolicy(
    enabled=True,
    timeout_web_s=30.0,
    timeout_rmi_s=30.0,
    max_attempts=6,
    backoff_base_s=1.0,
    backoff_factor=3.0,
    backoff_cap_s=15.0,
    jitter=0.5,
    retry_budget=0.5,
)


class TestZeroCost:
    """The subsystem must be invisible unless a fault can actually act."""

    def test_default_fault_config_changes_nothing(self):
        baseline = SystemUnderTest(small_config()).run()
        explicit = SystemUnderTest(
            dataclasses.replace(small_config(), faults=FaultConfig())
        ).run()
        assert explicit.responses == baseline.responses
        assert explicit.timeline.records == baseline.timeline.records

    def test_inert_retry_policy_changes_nothing(self):
        """Retry enabled but with timeouts no run can hit: identical."""
        baseline = SystemUnderTest(small_config()).run()
        inert = SystemUnderTest(
            small_config(
                retry=RetryPolicy(
                    enabled=True, timeout_web_s=1e6, timeout_rmi_s=1e6
                )
            )
        ).run()
        assert inert.responses == baseline.responses
        assert inert.timeline.records == baseline.timeline.records

    def test_event_outside_run_changes_nothing(self):
        baseline = SystemUnderTest(small_config()).run()
        late = SystemUnderTest(
            small_config(
                events=(
                    FaultEvent(kind="tier_crash", start_s=1e6, duration_s=1.0),
                )
            )
        ).run()
        assert late.responses == baseline.responses
        assert late.timeline.records == baseline.timeline.records

    def test_fault_free_run_has_zeroed_stats(self):
        result = SystemUnderTest(small_config()).run()
        stats = result.resilience
        assert stats is not None
        assert stats.total_offered > 0
        assert stats.total_failed == 0
        assert stats.total_retries == 0
        assert stats.total_timeouts == 0
        assert stats.total_shed == 0
        assert stats.zombie_completions == 0
        assert stats.down_ticks == ()


class TestCrash:
    CRASH = (FaultEvent(kind="tier_crash", start_s=50.0, duration_s=10.0),)

    def test_crash_drops_work_then_recovers(self):
        result = SystemUnderTest(small_config(events=self.CRASH)).run()
        stats = result.resilience
        assert len(stats.down_ticks) == 100  # 10 s of 0.1 s ticks
        assert stats.total_failed > 0
        in_outage = [
            t
            for per_type in result.responses
            for t, _ in per_type
            if 50.1 < t <= 60.0
        ]
        assert in_outage == []
        after = [
            t for per_type in result.responses for t, _ in per_type if t > 65.0
        ]
        assert after  # service resumed

    def test_retry_recovers_failed_operations(self):
        plain = SystemUnderTest(small_config(events=self.CRASH)).run()
        retried = SystemUnderTest(
            small_config(events=self.CRASH, retry=GENEROUS_RETRY)
        ).run()
        assert retried.resilience.total_retries > 0
        assert successes(retried) > successes(plain)
        assert retried.resilience.total_failed < plain.resilience.total_failed

    def test_retries_never_inflate_throughput(self):
        """Successes are bounded by offered first attempts even when
        the driver injects hundreds of retries."""
        result = SystemUnderTest(
            small_config(events=self.CRASH, retry=GENEROUS_RETRY)
        ).run()
        stats = result.resilience
        assert stats.total_retries > 0
        assert successes(result) <= stats.total_offered
        assert (
            successes(result)
            + stats.total_failed
            + result.resilience.zombie_completions
            <= stats.total_offered + stats.total_retries
        )


class TestFaultEffects:
    def test_db_slowdown_degrades_goodput_in_window(self):
        def in_window(result):
            return sum(
                1
                for per_type in result.responses
                for t, _ in per_type
                if 50.0 <= t < 80.0
            )

        baseline = SystemUnderTest(small_config()).run()
        slowed = SystemUnderTest(
            small_config(
                events=(
                    FaultEvent(
                        kind="db_slowdown",
                        start_s=50.0,
                        duration_s=30.0,
                        magnitude=4.0,
                    ),
                )
            )
        ).run()
        assert in_window(slowed) < 0.9 * in_window(baseline)

    def test_timeouts_abandon_requests_as_zombies(self):
        tiny = RetryPolicy(
            enabled=True,
            timeout_web_s=0.1,
            timeout_rmi_s=0.1,
            max_attempts=1,  # abandon permanently, never retry
        )
        result = SystemUnderTest(small_config(retry=tiny)).run()
        stats = result.resilience
        assert stats.total_timeouts > 0
        assert stats.zombie_completions > 0
        # Zombie completions are not client-visible throughput.
        assert successes(result) + stats.total_failed <= stats.total_offered


class TestBrownout:
    def test_brownout_sheds_only_low_priority_types(self):
        config = small_config(
            degradation=DegradationPolicy(
                enabled=True,
                brownout_threshold=0.25,
                sustain_ticks=5,
                max_shed_fraction=0.95,
                shed_priority_below=1,
            )
        )
        workload = dataclasses.replace(
            config.workload,
            injection_rate=int(round(config.workload.injection_rate * 1.5)),
        )
        config = dataclasses.replace(config, workload=workload)
        result = SystemUnderTest(config).run()
        stats = result.resilience
        assert stats.total_shed > 0
        for type_index, spec in enumerate(config.workload.transactions):
            if spec.priority >= 1:
                assert stats.shed[type_index] == 0
            else:
                assert stats.shed[type_index] > 0
