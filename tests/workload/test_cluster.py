"""Unit tests for the blade-cluster deployment model."""

import pytest

from repro.workload.cluster import ClusterLayout, ClusterSUT
from tests.conftest import make_quick_config


@pytest.fixture(scope="module")
def config():
    return make_quick_config()


class TestClusterLayout:
    def test_total_cores(self):
        layout = ClusterLayout(
            web_cores=1, app_blades=3, app_cores_per_blade=2, db_cores=2
        )
        assert layout.total_cores == 9


class TestClusterSUT:
    @pytest.fixture(scope="class")
    def result(self, config):
        layout = ClusterLayout(
            web_cores=1, app_blades=2, app_cores_per_blade=2, db_cores=1
        )
        return ClusterSUT(config, layout).run()

    def test_produces_throughput(self, result, config):
        # A 6-core cluster should sustain the IR-40 load.
        assert result.jops == pytest.approx(
            config.workload.target_ops_per_s, rel=0.12
        )

    def test_tier_utilizations_bounded(self, result):
        for tier, u in result.tier_utilization.items():
            assert 0.0 <= u <= 1.0, tier

    def test_app_tier_busier_than_web(self, result):
        """WAS is the dominant CPU consumer (Figure 4), so the app
        blades run hotter than the web blade at equal core counts."""
        assert (
            result.tier_utilization["app"] > result.tier_utilization["web"]
        )

    def test_each_blade_collects(self, result):
        assert all(n > 0 for n in result.gc_events_per_blade)

    def test_network_hops_floor_response_time(self, result):
        # Even the fastest response carries the interconnect hops.
        assert min(result.response_samples) >= 4 * 0.4 / 1000.0

    def test_deterministic(self, config):
        layout = ClusterLayout(app_blades=2, app_cores_per_blade=1)
        a = ClusterSUT(config, layout).run()
        b = ClusterSUT(config, layout).run()
        assert a.jops == b.jops
        assert a.tier_utilization == b.tier_utilization


class TestOverloadedCluster:
    def test_undersized_app_tier_fails(self, config):
        layout = ClusterLayout(
            web_cores=1, app_blades=1, app_cores_per_blade=1, db_cores=1
        )
        result = ClusterSUT(config, layout).run()
        assert not result.passed
        assert result.bottleneck_tier == "app"
