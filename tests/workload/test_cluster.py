"""Unit tests for the blade-cluster deployment model."""

import pytest

from repro.workload.cluster import ClusterLayout, ClusterSUT
from tests.conftest import make_quick_config


@pytest.fixture(scope="module")
def config():
    return make_quick_config()


class TestClusterLayout:
    def test_total_cores(self):
        layout = ClusterLayout(
            web_cores=1, app_blades=3, app_cores_per_blade=2, db_cores=2
        )
        assert layout.total_cores == 9


class TestClusterSUT:
    @pytest.fixture(scope="class")
    def result(self, config):
        layout = ClusterLayout(
            web_cores=1, app_blades=2, app_cores_per_blade=2, db_cores=1
        )
        return ClusterSUT(config, layout).run()

    def test_produces_throughput(self, result, config):
        # A 6-core cluster should sustain the IR-40 load.
        assert result.jops == pytest.approx(
            config.workload.target_ops_per_s, rel=0.12
        )

    def test_tier_utilizations_bounded(self, result):
        for tier, u in result.tier_utilization.items():
            assert 0.0 <= u <= 1.0, tier

    def test_app_tier_busier_than_web(self, result):
        """WAS is the dominant CPU consumer (Figure 4), so the app
        blades run hotter than the web blade at equal core counts."""
        assert (
            result.tier_utilization["app"] > result.tier_utilization["web"]
        )

    def test_each_blade_collects(self, result):
        assert all(n > 0 for n in result.gc_events_per_blade)

    def test_network_hops_floor_response_time(self, result):
        # Even the fastest response carries the interconnect hops.
        assert min(result.response_samples) >= 4 * 0.4 / 1000.0

    def test_deterministic(self, config):
        layout = ClusterLayout(app_blades=2, app_cores_per_blade=1)
        a = ClusterSUT(config, layout).run()
        b = ClusterSUT(config, layout).run()
        assert a.jops == b.jops
        assert a.tier_utilization == b.tier_utilization


class TestOverloadedCluster:
    def test_undersized_app_tier_fails(self, config):
        layout = ClusterLayout(
            web_cores=1, app_blades=1, app_cores_per_blade=1, db_cores=1
        )
        result = ClusterSUT(config, layout).run()
        assert not result.passed
        assert result.bottleneck_tier == "app"


class TestClusterFaults:
    LAYOUT = ClusterLayout(
        web_cores=1, app_blades=2, app_cores_per_blade=2, db_cores=1
    )

    def faulted(self, config, *events):
        import dataclasses

        from repro.config import FaultConfig

        return dataclasses.replace(config, faults=FaultConfig(events=events))

    def test_event_outside_run_changes_nothing(self, config):
        from repro.config import FaultEvent

        baseline = ClusterSUT(config, self.LAYOUT).run()
        late = ClusterSUT(
            self.faulted(
                config,
                FaultEvent(kind="tier_crash", start_s=1e6, duration_s=1.0),
            ),
            self.LAYOUT,
        ).run()
        assert late.jops == baseline.jops
        assert late.response_samples == baseline.response_samples
        assert late.failed_jobs == 0

    def test_blade_crash_loses_jobs(self, config):
        from repro.config import FaultEvent

        baseline = ClusterSUT(config, self.LAYOUT).run()
        crashed = ClusterSUT(
            self.faulted(
                config,
                FaultEvent(
                    kind="tier_crash", start_s=100.0, duration_s=30.0, target=0
                ),
            ),
            self.LAYOUT,
        ).run()
        assert crashed.failed_jobs > 0
        assert crashed.jops < baseline.jops

    def test_net_loss_drops_arrivals(self, config):
        from repro.config import FaultEvent

        lossy = ClusterSUT(
            self.faulted(
                config,
                FaultEvent(
                    kind="net_loss",
                    start_s=100.0,
                    duration_s=60.0,
                    magnitude=0.3,
                ),
            ),
            self.LAYOUT,
        ).run()
        assert lossy.failed_jobs > 0

    def test_net_latency_slows_every_response(self, config):
        from repro.config import FaultEvent

        baseline = ClusterSUT(config, self.LAYOUT).run()
        slowed = ClusterSUT(
            self.faulted(
                config,
                FaultEvent(
                    kind="net_latency",
                    start_s=0.0,
                    duration_s=config.workload.duration_s,
                    magnitude=5.0,
                ),
            ),
            self.LAYOUT,
        ).run()
        # Same jobs (identical RNG streams), strictly larger hop cost.
        assert slowed.failed_jobs == 0
        assert sum(slowed.response_samples) > sum(baseline.response_samples)
        assert min(slowed.response_samples) >= 5 * (2 * 0.4 / 1000.0)
