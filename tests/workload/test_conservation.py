"""Conservation-law tests over whole workload runs.

These are the accounting identities no unit test can check: work in
equals work out, CPU time is neither created nor destroyed, and every
operation the driver injected is accounted for somewhere.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SamplingConfig
from repro.workload.presets import jas2004
from repro.workload.sut import SystemUnderTest


def run_small(seed, ir=40, duration_s=120.0):
    cfg = jas2004(ir=ir, duration_s=duration_s, seed=seed)
    cfg = dataclasses.replace(
        cfg,
        jvm=dataclasses.replace(cfg.jvm, n_jited_methods=300, warm_methods=20),
        sampling=SamplingConfig(window_cycles=8000, warmup_windows=2),
    )
    return SystemUnderTest(cfg).run()


class TestConservation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_small(seed=404)

    def test_operations_conserved(self, result):
        """arrivals = completions + rejected + still-in-flight."""
        arrivals = sum(sum(r.arrivals) for r in result.timeline.records)
        completions = sum(
            sum(r.completions) for r in result.timeline.records
        )
        rejected = sum(result.rejected)
        in_flight_at_end = result.timeline.records[-1].queue_length
        assert arrivals == completions + rejected + in_flight_at_end

    def test_cpu_time_conserved(self, result):
        """busy + idle = capacity on every tick."""
        cap = result.timeline.capacity_ms_per_tick
        for record in result.timeline.records[::50]:
            assert record.busy_ms + record.idle_ms == pytest.approx(cap, abs=1e-6)

    def test_response_times_positive_and_bounded(self, result):
        for per_type in result.responses:
            for t, rt in per_type:
                assert rt > 0.0
                assert rt < result.config.workload.duration_s

    def test_heap_never_exceeds_capacity(self, result):
        cap = result.config.jvm.heap_mb * 1024 * 1024
        for record in result.timeline.records[::50]:
            assert record.heap_used_bytes <= cap

    def test_gc_events_ordered_in_time(self, result):
        times = [e.start_time_s for e in result.gc_events]
        assert times == sorted(times)
        assert all(
            b - a > 0.1 for a, b in zip(times, times[1:])
        )  # pauses cannot overlap


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_conservation_across_seeds(seed):
    """The operation-conservation identity holds for any seed."""
    result = run_small(seed=seed, duration_s=60.0)
    arrivals = sum(sum(r.arrivals) for r in result.timeline.records)
    completions = sum(sum(r.completions) for r in result.timeline.records)
    rejected = sum(result.rejected)
    in_flight = result.timeline.records[-1].queue_length
    assert arrivals == completions + rejected + in_flight
