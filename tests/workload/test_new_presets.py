"""Tests for the Sovereign-JVM and Trade6 presets."""

import pytest

from repro.workload.metrics import evaluate_run
from repro.workload.presets import jas2004, jas2004_sovereign, trade6
from repro.workload.sut import SystemUnderTest


@pytest.fixture(scope="module")
def j9_report():
    return evaluate_run(SystemUnderTest(jas2004(duration_s=300.0)).run())


@pytest.fixture(scope="module")
def sovereign_report():
    return evaluate_run(
        SystemUnderTest(jas2004_sovereign(duration_s=300.0)).run()
    )


@pytest.fixture(scope="module")
def trade6_report():
    return evaluate_run(SystemUnderTest(trade6(duration_s=300.0)).run())


class TestSovereign:
    def test_higher_utilization_at_same_ir(self, j9_report, sovereign_report):
        """Footnote 2: Sovereign 'has a higher CPU utilization at the
        same IR' than J9."""
        assert sovereign_report.utilization > j9_report.utilization + 0.02

    def test_same_trends(self, sovereign_report):
        """'The general trends ... resemble closely those that we have
        seen with Sovereign JVM': small GC, WAS dominance, pass."""
        assert sovereign_report.passed
        assert sovereign_report.gc_fraction < 0.025
        shares = sovereign_report.component_shares
        was = shares["was_jited"] + shares["was_nonjited"]
        assert was / (shares["web"] + shares["db2"]) == pytest.approx(2.0, abs=0.5)


class TestTrade6:
    def test_small_gc_overhead(self, trade6_report):
        """Conclusions: 'we observed a similar small GC runtime
        overhead with Trade6, another J2EE workload.'"""
        assert trade6_report.gc_fraction < 0.02
        assert trade6_report.gc_count > 2

    def test_runs_and_passes(self, trade6_report):
        assert trade6_report.passed
        assert trade6_report.jops > 0

    def test_same_architectural_shape(self, trade6_report):
        shares = trade6_report.component_shares
        assert shares["was_jited"] + shares["was_nonjited"] > 0.4
        assert shares["db2"] > 0.1
