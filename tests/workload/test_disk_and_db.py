"""Tests for the disk model and the database tier."""

import random

import pytest

from repro.config import DiskConfig, WorkloadConfig
from repro.workload.database import Database
from repro.workload.disk import DiskModel
from repro.workload.transactions import Request


def make_request(seed=0, io_count=1):
    cfg = WorkloadConfig()
    request = Request(0, cfg.transactions[0], 0.0, random.Random(seed), io_count)
    request.consume(request.total_cpu_ms + 1)  # drive it into I/O
    assert request.in_io
    return request


class TestDiskModel:
    def test_ram_disk_completes_immediately(self):
        disk = DiskModel(DiskConfig.ram_disk(), tick_s=0.1)
        disk.submit(make_request())
        assert len(disk.tick()) == 1

    def test_hard_disk_throughput_bounded(self):
        disk = DiskModel(DiskConfig.hard_disks(1, service_ms=10.0), tick_s=0.1)
        for i in range(30):
            disk.submit(make_request(seed=i))
        done = disk.tick()
        # 100 ms tick / 10 ms service = 10 requests max.
        assert len(done) == 10
        assert disk.queue_length == 20

    def test_more_disks_more_throughput(self):
        one = DiskModel(DiskConfig.hard_disks(1, 10.0), 0.1)
        four = DiskModel(DiskConfig.hard_disks(4, 10.0), 0.1)
        for i in range(50):
            one.submit(make_request(seed=i))
            four.submit(make_request(seed=100 + i))
        assert len(four.tick()) == len(one.tick()) * 4

    def test_fifo_order(self):
        disk = DiskModel(DiskConfig.hard_disks(1, 60.0), tick_s=0.1)
        first = make_request(seed=1)
        second = make_request(seed=2)
        disk.submit(first)
        disk.submit(second)
        done = disk.tick()
        assert done == [first]

    def test_utilization_accounting(self):
        disk = DiskModel(DiskConfig.hard_disks(2, 10.0), tick_s=0.1)
        for i in range(10):
            disk.submit(make_request(seed=i))
        disk.tick()
        assert 0.0 < disk.utilization(1) <= 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DiskConfig(kind="tape")
        with pytest.raises(ValueError):
            DiskConfig(kind="hdd", n_disks=0)

    def test_fault_clear_does_not_bank_degraded_carry(self):
        """Regression: the carry-over cap must use the un-degraded
        service quantum.  Capping against the fault-inflated quantum
        let the model bank several healthy quanta of free capacity,
        paid out as a completion burst the tick a disk_degraded fault
        cleared."""
        disk = DiskModel(DiskConfig.hard_disks(1, service_ms=40.0), tick_s=0.1)
        for i in range(10):
            disk.submit(make_request(seed=i))
        disk.service_factor = 3.0  # degraded service: 120 ms > the tick
        assert disk.tick() == []  # tick's 100 ms cannot finish one I/O
        disk.service_factor = 1.0  # fault clears
        burst = disk.tick()
        # At most one healthy quantum (40 ms) carries over: the first
        # healthy tick serves floor((100 + 40) / 40) = 3 requests — not
        # the 5 that carrying min(100, 120) = 100 ms used to allow.
        assert len(burst) == 3

    def test_healthy_carry_still_preserved(self):
        """The fix must not change fault-free carry behavior: residual
        budget up to one quantum still rolls into the next tick."""
        disk = DiskModel(DiskConfig.hard_disks(1, service_ms=30.0), tick_s=0.1)
        for i in range(10):
            disk.submit(make_request(seed=i))
        assert len(disk.tick()) == 3  # 100 // 30, residual 10 ms kept
        assert len(disk.tick()) == 3  # (10 + 100) // 30
        assert len(disk.tick()) == 4  # (20 + 100) // 30


class TestDatabase:
    def make_db(self, ir=40, hit=0.72, seed=5):
        import dataclasses

        cfg = dataclasses.replace(
            WorkloadConfig(), injection_rate=ir, buffer_pool_hit=hit
        )
        return Database(cfg, random.Random(seed))

    def test_miss_rate_tracks_hit_ratio(self):
        db = self.make_db(hit=0.72)
        spec = WorkloadConfig().transactions[0]
        for _ in range(800):
            db.plan_ios(spec)
        assert db.observed_hit_ratio == pytest.approx(0.72, abs=0.03)

    def test_higher_ir_means_bigger_data_and_lower_hits(self):
        low = self.make_db(ir=40)
        high = self.make_db(ir=80)
        assert high.data_scale > low.data_scale
        assert high.effective_hit_ratio < low.effective_hit_ratio

    def test_plan_ios_counts(self):
        db = self.make_db()
        spec = WorkloadConfig().transactions[0]
        ios = db.plan_ios(spec)
        assert ios >= 0
        assert db.queries_issued > 0

    def test_hit_ratio_bounds(self):
        assert 0.3 <= self.make_db(ir=1000).effective_hit_ratio <= 0.98
