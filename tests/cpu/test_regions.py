"""Tests for the address-space layout."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import JvmConfig, MachineConfig, SharingProfile, TopologyConfig
from repro.cpu import regions as R
from repro.cpu.regions import AddressSpace, Region
from repro.cpu.sources import DataSource


@pytest.fixture(scope="module")
def space():
    return AddressSpace.build(MachineConfig(), JvmConfig())


class TestLayout:
    def test_all_expected_regions_exist(self, space):
        for name in (
            R.CODE_JIT,
            R.CODE_NATIVE,
            R.CODE_GC,
            R.CODE_KERNEL,
            R.CODE_IDLE,
            R.STACK,
            R.HEAP_HOT,
            R.HEAP_MEDIUM,
            R.HEAP_COLD,
            R.HEAP_ALLOC,
            R.HEAP_SHARED,
            R.GC_BITMAP,
            R.DB_BUFFER,
            R.NATIVE_DATA,
        ):
            assert name in space

    def test_regions_do_not_overlap(self, space):
        spans = sorted(
            (space[name].base, space[name].end) for name in space.names()
        )
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_bases_page_aligned(self, space):
        for name in space.names():
            region = space[name]
            assert region.base % region.page_bytes == 0

    def test_heap_regions_use_large_pages_by_default(self, space):
        for name in (R.HEAP_COLD, R.HEAP_MEDIUM, R.HEAP_ALLOC, R.GC_BITMAP):
            assert space[name].page_bytes == 16 * 1024 * 1024

    def test_small_pages_without_large_page_config(self):
        space = AddressSpace.build(
            MachineConfig(), JvmConfig(heap_large_pages=False)
        )
        assert space[R.HEAP_COLD].page_bytes == 4096

    def test_code_large_pages_option(self):
        space = AddressSpace.build(
            MachineConfig(), JvmConfig(code_large_pages=True)
        )
        assert space[R.CODE_JIT].page_bytes == 16 * 1024 * 1024

    def test_code_footprint_scales_with_methods(self):
        small = AddressSpace.build(MachineConfig(), JvmConfig(n_jited_methods=1000))
        large = AddressSpace.build(MachineConfig(), JvmConfig(n_jited_methods=9000))
        assert large[R.CODE_JIT].size_bytes > small[R.CODE_JIT].size_bytes

    def test_live_set_sizes_cold_region(self):
        space = AddressSpace.build(MachineConfig(), JvmConfig(live_set_mb=64.0))
        assert space[R.HEAP_COLD].size_bytes == 64 * 1024 * 1024

    def test_region_of(self, space):
        stack = space[R.STACK]
        assert space.region_of(stack.base + 100) is stack
        assert space.region_of(stack.base - 1) is not stack


class TestBackingDistributions:
    def test_backings_normalized(self, space):
        for name in space.names():
            region = space[name]
            if region.backing:
                assert sum(p for _, p in region.backing) == pytest.approx(1.0)
            if region.inst_backing:
                assert sum(p for _, p in region.inst_backing) == pytest.approx(1.0)

    def test_data_regions_have_backing_and_code_regions_inst(self, space):
        assert space[R.HEAP_COLD].backing
        assert space[R.CODE_JIT].inst_backing
        assert not space[R.CODE_JIT].backing

    def test_pick_source_respects_distribution(self, space):
        rng = random.Random(0)
        region = space[R.HEAP_COLD]
        draws = [region.pick_source(rng) for _ in range(2000)]
        l3 = sum(1 for d in draws if d is DataSource.L3) / len(draws)
        expected = dict(region.backing)[DataSource.L3]
        assert abs(l3 - expected) < 0.05

    def test_shared_region_reflects_topology(self):
        # Default: two MCMs -> L2.75 sources.
        default = AddressSpace.build(MachineConfig(), JvmConfig())
        sources = {s for s, _ in default[R.HEAP_SHARED].backing}
        assert DataSource.L275_SHR in sources
        # One MCM, two chips -> L2.5 sources.
        machine = MachineConfig(
            topology=TopologyConfig(n_mcms=1, live_chips_per_mcm=2)
        )
        single = AddressSpace.build(machine, JvmConfig())
        sources = {s for s, _ in single[R.HEAP_SHARED].backing}
        assert DataSource.L25_SHR in sources
        assert DataSource.L275_SHR not in sources

    def test_sharing_profile_modified_fraction(self):
        hot_sharing = SharingProfile(remote_fraction=0.9, modified_fraction=0.5)
        space = AddressSpace.build(MachineConfig(), JvmConfig(), hot_sharing)
        backing = dict(space[R.HEAP_SHARED].backing)
        assert backing[DataSource.L275_MOD] > backing.get(DataSource.L275_SHR, 0) * 0.5


class TestRegionPrimitives:
    def test_random_address_in_bounds(self, space):
        rng = random.Random(1)
        for name in space.names():
            region = space[name]
            for _ in range(20):
                addr = region.random_address(rng)
                assert region.contains(addr)

    def test_duplicate_names_rejected(self, space):
        region = space[R.STACK]
        with pytest.raises(ValueError):
            AddressSpace([region, region])

    def test_invalid_region(self):
        with pytest.raises(ValueError):
            Region(name="bad", base=0, size_bytes=0, page_bytes=4096)
        with pytest.raises(ValueError):
            Region(name="bad", base=123, size_bytes=10, page_bytes=4096)


@settings(max_examples=20, deadline=None)
@given(
    heap_mb=st.sampled_from([128, 512, 1024, 4096]),
    live_mb=st.floats(16.0, 400.0),
    methods=st.integers(100, 10000),
    large=st.booleans(),
)
def test_layout_invariants_across_configs(heap_mb, live_mb, methods, large):
    jvm = JvmConfig(
        heap_mb=heap_mb,
        live_set_mb=live_mb,
        n_jited_methods=methods,
        warm_methods=min(50, methods - 1),
        heap_large_pages=large,
    )
    space = AddressSpace.build(MachineConfig(), jvm)
    spans = sorted((space[n].base, space[n].end) for n in space.names())
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0
    for n in space.names():
        region = space[n]
        assert region.base % region.page_bytes == 0
        assert region.size_bytes > 0
