"""Behavioral tests of the stream generator's address model.

The locality model (scan / dwell / fresh) is the load-bearing piece of
the whole memory calibration, so its properties are tested directly by
recording the addresses a running slice issues.
"""

import random
from collections import defaultdict

import pytest

from repro.config import JvmConfig, MachineConfig
from repro.cpu import regions as R
from repro.cpu.branch import BranchUnit
from repro.cpu.hierarchy import MemorySystem
from repro.cpu.phases import PhaseProfile, build_pool
from repro.cpu.pipeline import PipelineAccountant
from repro.cpu.regions import AddressSpace
from repro.cpu.stream import SliceRunner
from repro.cpu.translation import TranslationUnit
from repro.hpm.counters import CounterBank
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def space():
    return AddressSpace.build(MachineConfig(), JvmConfig())


def make_profile(space, load_mix, seq=0.0, dwell=8.0):
    pool = build_pool(
        random.Random(0),
        space[R.CODE_GC].base,
        space[R.CODE_GC].size_bytes,
        n_units=4,
        mean_size=512,
        weights=[1.0] * 4,
    )
    return PhaseProfile(
        name="probe",
        code_pool=pool,
        code_region=R.CODE_GC,
        active_units=4,
        block_mean=6.0,
        mem_per_instr=0.5,
        load_fraction=1.0,  # loads only: simplest to reason about
        load_mix=load_mix,
        store_mix=((R.STACK, 1.0),),
        seq_load_fraction=seq,
        page_dwell=dwell,
    )


def record_addresses(space, profile, cycles=40000, seed=5):
    machine = MachineConfig()
    bank = CounterBank()
    rngs = RngFactory(seed)
    memory = MemorySystem(machine, bank, rngs.stream("b"))
    recorded = defaultdict(list)
    original = memory.load

    def spy(addr, region):
        recorded[region.name].append(addr)
        return original(addr, region)

    memory.load = spy
    accountant = PipelineAccountant(machine.latencies, rngs.stream("p"))
    runner = SliceRunner(
        profile,
        space,
        memory,
        TranslationUnit(machine.translation),
        BranchUnit(machine.branch),
        accountant,
        bank,
        rngs.stream("s"),
    )
    runner.run_until(cycles)
    return recorded


class TestBounds:
    def test_all_addresses_within_their_region(self, space):
        mix = ((R.HEAP_COLD, 0.5), (R.DB_BUFFER, 0.5))
        recorded = record_addresses(space, make_profile(space, mix))
        for name, addrs in recorded.items():
            region = space[name]
            assert all(region.base <= a < region.end for a in addrs)

    def test_every_mixed_region_receives_traffic(self, space):
        mix = ((R.HEAP_COLD, 0.4), (R.DB_BUFFER, 0.3), (R.STACK, 0.3))
        recorded = record_addresses(space, make_profile(space, mix))
        assert set(recorded) == {R.HEAP_COLD, R.DB_BUFFER, R.STACK}

    def test_mix_weights_respected(self, space):
        mix = ((R.HEAP_COLD, 0.8), (R.DB_BUFFER, 0.2))
        # Deep-miss regions execute few ops per cycle: use a big
        # budget so the binomial noise is small.
        recorded = record_addresses(
            space, make_profile(space, mix), cycles=400000
        )
        total = sum(len(v) for v in recorded.values())
        share = len(recorded[R.HEAP_COLD]) / total
        assert share == pytest.approx(0.8, abs=0.05)


class TestLocalityModes:
    def test_dwell_concentrates_accesses(self, space):
        """High dwell: consecutive addresses mostly share a small
        neighborhood; low dwell: they scatter."""

        def mean_gap(dwell):
            mix = ((R.HEAP_COLD, 1.0),)
            recorded = record_addresses(
                space, make_profile(space, mix, dwell=dwell)
            )
            addrs = recorded[R.HEAP_COLD]
            gaps = [abs(b - a) for a, b in zip(addrs, addrs[1:])]
            return sum(gaps) / len(gaps)

        assert mean_gap(30.0) < mean_gap(1.5) / 3

    def test_scans_are_sequential_runs(self, space):
        """With a pure scan profile, most consecutive address pairs
        advance by exactly the scan step."""
        mix = ((R.HEAP_COLD, 1.0),)
        profile = make_profile(space, mix, seq=1.0, dwell=1.0)
        recorded = record_addresses(space, profile)
        addrs = recorded[R.HEAP_COLD]
        steps = [b - a for a, b in zip(addrs, addrs[1:])]
        sequential = sum(1 for s in steps if s == 128)
        assert sequential / len(steps) > 0.7  # chunk resets break some

    def test_scan_chunks_reset(self, space):
        """A scan must not run forever: chunk resets produce large
        jumps at roughly the configured chunk rate."""
        mix = ((R.HEAP_COLD, 1.0),)
        profile = make_profile(space, mix, seq=1.0, dwell=1.0)
        recorded = record_addresses(space, profile)
        addrs = recorded[R.HEAP_COLD]
        jumps = sum(
            1 for a, b in zip(addrs, addrs[1:]) if abs(b - a) > 4096
        )
        # Mean chunk is 24 accesses: expect roughly len/24 resets.
        expected = len(addrs) / 24.0
        assert expected * 0.4 < jumps < expected * 2.5

    def test_scan_affinity_zero_means_no_scans(self, space):
        """Stack-like regions (affinity 0.1) barely scan even under a
        scan-heavy profile."""
        mix = ((R.STACK, 1.0),)
        profile = make_profile(space, mix, seq=0.9, dwell=2.0)
        recorded = record_addresses(space, profile)
        addrs = recorded[R.STACK]
        steps = [b - a for a, b in zip(addrs, addrs[1:])]
        sequential = sum(1 for s in steps if s == 128)
        assert sequential / max(1, len(steps)) < 0.35
