"""Property tests: the array-backed cache kernel is access-for-access
equivalent to the original OrderedDict reference implementation.

The optimized :class:`~repro.cpu.cache.SetAssociativeCache` (flat
preallocated way lists, manual LRU/FIFO rotation) must agree with
:class:`~repro.cpu.reference.ReferenceSetAssociativeCache` on *every*
observable: hit/miss booleans per access, eviction victims per fill,
hit/miss counters, occupancy, and membership — for both replacement
policies.  Hypothesis drives randomized operation sequences over small
geometries where collisions and evictions are frequent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.reference import ReferenceSetAssociativeCache

#: Property suite: exhaustive but long — runs in the full CI job, not
#: the tier-1 default selection.
pytestmark = pytest.mark.slow

# Small geometries make every set contended.
_GEOMETRIES = st.sampled_from([(1, 1), (1, 2), (2, 2), (4, 2), (2, 4), (8, 2)])
_POLICIES = st.sampled_from(["lru", "fifo"])

# An operation is (opcode, block).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "access", "contains", "invalidate", "flush"]),
        st.integers(0, 63),
    ),
    min_size=1,
    max_size=300,
)


def _pair(geometry, policy):
    n_sets, ways = geometry
    return (
        SetAssociativeCache(n_sets, ways, policy),
        ReferenceSetAssociativeCache(n_sets, ways, policy),
    )


def _assert_same_state(new, ref):
    assert new.hits == ref.hits
    assert new.misses == ref.misses
    assert new.occupancy == ref.occupancy
    # Membership and replacement order agree set by set: the reference
    # OrderedDict's iteration order (victim first) must equal the
    # optimized way list's order (index 0 = victim).
    for ways, ref_ways in zip(new.sets, ref._sets):
        assert list(ways) == list(ref_ways)


@settings(max_examples=120, deadline=None)
@given(_GEOMETRIES, _POLICIES, _OPS)
def test_operation_sequences_equivalent(geometry, policy, ops):
    new, ref = _pair(geometry, policy)
    for op, block in ops:
        if op == "lookup":
            assert new.lookup(block) == ref.lookup(block)
        elif op == "fill":
            assert new.fill(block) == ref.fill(block)
        elif op == "access":
            # The fused lookup-or-fill kernel vs the reference's
            # two-step protocol (what the seed memory system did).
            got = new.access(block)
            want = ref.lookup(block)
            if not want:
                ref.fill(block)
            assert got == want
        elif op == "contains":
            assert new.contains(block) == ref.contains(block)
        elif op == "invalidate":
            assert new.invalidate(block) == ref.invalidate(block)
        elif op == "flush":
            new.flush()
            ref.flush()
        _assert_same_state(new, ref)


@settings(max_examples=60, deadline=None)
@given(_POLICIES, st.lists(st.integers(0, 31), min_size=1, max_size=200))
def test_fill_victims_identical(policy, blocks):
    """Eviction order must match exactly on a fill-only workload."""
    new, ref = _pair((2, 2), policy)
    victims_new = [new.fill(b) for b in blocks]
    victims_ref = [ref.fill(b) for b in blocks]
    assert victims_new == victims_ref


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
def test_lru_touch_order_identical(blocks):
    """Interleaved hits must rotate the LRU order identically."""
    new, ref = _pair((1, 4), "lru")
    for b in blocks:
        if not new.lookup(b):
            new.fill(b)
        if not ref.lookup(b):
            ref.fill(b)
        _assert_same_state(new, ref)


def test_hit_rate_matches_reference():
    new, ref = _pair((4, 2), "fifo")
    for b in [0, 4, 8, 0, 4, 8, 12, 0]:
        new.access(b)
        if not ref.lookup(b):
            ref.fill(b)
    assert new.hit_rate == ref.hit_rate
