"""Source-enum mappings and randomized memory-system invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import JvmConfig, MachineConfig
from repro.cpu import regions as R
from repro.cpu.hierarchy import MemorySystem
from repro.cpu.regions import AddressSpace
from repro.cpu.sources import DataSource, InstSource
from repro.hpm.counters import CounterBank
from repro.hpm.events import DATA_SOURCE_EVENTS, INST_SOURCE_EVENTS, Event


class TestSourceEnums:
    def test_every_data_source_has_a_distinct_event(self):
        events = {src.event for src in DataSource}
        assert len(events) == len(DataSource)
        assert events == set(DATA_SOURCE_EVENTS)

    def test_every_inst_source_has_a_distinct_event(self):
        events = {src.event for src in InstSource}
        assert len(events) == len(InstSource)
        assert events == set(INST_SOURCE_EVENTS)

    def test_labels_are_human_readable(self):
        assert DataSource.L275_MOD.value == "L2.75 modified"
        assert InstSource.L1.value == "L1I"


@pytest.fixture(scope="module")
def space():
    return AddressSpace.build(MachineConfig(), JvmConfig())


REGION_NAMES = [
    R.STACK,
    R.HEAP_HOT,
    R.HEAP_MEDIUM,
    R.HEAP_COLD,
    R.HEAP_ALLOC,
    R.DB_BUFFER,
    R.NATIVE_DATA,
]


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(REGION_NAMES),
            st.booleans(),  # is_load
            st.integers(0, 10_000_000),
        ),
        min_size=1,
        max_size=300,
    ),
    seed=st.integers(0, 1000),
)
def test_memory_system_counter_invariants(space, ops, seed):
    """For any access sequence: misses <= references, every load miss
    has exactly one data source, and counters never go negative."""
    bank = CounterBank()
    mem = MemorySystem(MachineConfig(), bank, random.Random(seed))
    for name, is_load, offset in ops:
        region = space[name]
        addr = region.base + offset % region.size_bytes
        if is_load:
            mem.load(addr, region)
        else:
            mem.store(addr, region)
    snap = bank.snapshot()
    assert snap[Event.PM_LD_MISS_L1] <= snap[Event.PM_LD_REF_L1]
    assert snap[Event.PM_ST_MISS_L1] <= snap[Event.PM_ST_REF_L1]
    sources = sum(snap[e] for e in DATA_SOURCE_EVENTS)
    assert sources == snap[Event.PM_LD_MISS_L1]
    n_loads = sum(1 for _, is_load, _ in ops if is_load)
    assert snap[Event.PM_LD_REF_L1] == n_loads
    assert snap[Event.PM_ST_REF_L1] == len(ops) - n_loads


@settings(max_examples=20, deadline=None)
@given(
    lines=st.lists(st.integers(0, 4000), min_size=1, max_size=200),
    seed=st.integers(0, 100),
)
def test_repeated_load_of_cached_lines_hits(space, lines, seed):
    """Any line loaded twice in immediate succession hits the second
    time (fills are unconditional on load misses)."""
    bank = CounterBank()
    mem = MemorySystem(MachineConfig(), bank, random.Random(seed))
    region = space[R.DB_BUFFER]
    for line in lines:
        addr = region.base + (line * 128) % region.size_bytes
        mem.load(addr, region)
        source, _ = mem.load(addr, region)
        assert source is None  # immediate re-load always hits
