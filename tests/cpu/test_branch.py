"""Tests for the branch predictors."""

import random

from repro.config import BranchPredictorConfig
from repro.cpu.branch import BranchUnit, DirectionPredictor, TargetPredictor


class TestDirectionPredictor:
    def test_biased_site_learns(self):
        p = DirectionPredictor(64)
        site = 5
        mispredicts = sum(p.execute(site, True) for _ in range(100))
        # After warmup, an always-taken site should stop mispredicting.
        assert mispredicts <= 2

    def test_alternating_site_mispredicts_heavily(self):
        p = DirectionPredictor(64)
        site = 9
        outcomes = [bool(i % 2) for i in range(200)]
        mispredicts = sum(p.execute(site, t) for t in outcomes)
        assert mispredicts > 60

    def test_aliasing_interferes(self):
        """Two opposite-biased sites sharing an entry hurt each other —
        the capacity effect of a large code footprint."""
        p = DirectionPredictor(4)
        a, b = 0, 4  # alias to the same entry
        mispredicts = 0
        for _ in range(100):
            mispredicts += p.execute(a, True)
            mispredicts += p.execute(b, False)
        assert mispredicts >= 100  # thrashes between states

    def test_random_site_near_half(self):
        p = DirectionPredictor(64)
        rng = random.Random(3)
        mispredicts = sum(
            p.execute(2, rng.random() < 0.5) for _ in range(1000)
        )
        assert 350 < mispredicts < 650


class TestTargetPredictor:
    def test_monomorphic_site_sticks(self):
        p = TargetPredictor(32)
        misses = sum(p.execute(7, 42) for _ in range(50))
        assert misses == 1  # only the cold miss

    def test_alternating_targets_always_miss(self):
        p = TargetPredictor(32)
        misses = sum(p.execute(7, i % 2) for i in range(50))
        assert misses == 50

    def test_dominant_target_mostly_hits(self):
        p = TargetPredictor(32)
        rng = random.Random(5)
        misses = 0
        for _ in range(1000):
            target = 1 if rng.random() < 0.95 else 2
            misses += p.execute(3, target)
        # Last-value predictor on p=0.95: ~2*p*(1-p) ~ 9.5% misses.
        assert 40 < misses < 200

    def test_aliasing_between_sites(self):
        p = TargetPredictor(2)
        misses = 0
        for _ in range(50):
            misses += p.execute(0, 10)
            misses += p.execute(2, 20)  # aliases with site 0
        assert misses == 100  # constant mutual eviction


class TestBranchUnit:
    def test_wraps_both_predictors(self):
        unit = BranchUnit(BranchPredictorConfig(direction_entries=16, target_entries=16))
        assert isinstance(unit.conditional(1, True), bool)
        assert isinstance(unit.indirect(1, 99), bool)
