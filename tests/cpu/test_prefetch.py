"""Tests for the sequential stream prefetcher."""

from repro.config import PrefetcherConfig
from repro.cpu.prefetch import StreamPrefetcher


def make(n_streams=4, allocate_after=2, depth=4):
    return StreamPrefetcher(
        PrefetcherConfig(n_streams=n_streams, allocate_after=allocate_after, depth=depth)
    )


class TestAllocation:
    def test_ascending_run_allocates(self):
        p = make()
        assert not p.on_miss(100).allocated
        assert not p.on_miss(101).allocated
        outcome = p.on_miss(102).allocated  # 3rd consecutive -> stream
        assert outcome
        assert p.active_streams == 1

    def test_allocation_primes_l2_stage(self):
        p = make(depth=5)
        p.on_miss(10)
        p.on_miss(11)
        outcome = p.on_miss(12)
        assert outcome.l2_prefetches == 5

    def test_scattered_misses_do_not_allocate(self):
        p = make()
        for line in (5, 17, 3, 90, 44, 61):
            assert not p.on_miss(line).allocated
        assert p.active_streams == 0

    def test_clustered_non_sequential_misses_do_not_allocate(self):
        """Repeated non-adjacent misses must not look like a stream
        (clustered dwell misses were a real calibration bug)."""
        p = make()
        for line in (3, 9, 3, 9, 3, 9, 3, 9):
            p.on_miss(line)
        assert p.active_streams == 0

    def test_interleaved_ascending_progress_allocates(self):
        """The detector tolerates interleaving: ascending progress
        built around unrelated misses still forms a stream."""
        p = make()
        for line in (5, 90, 6, 91, 7):
            p.on_miss(line)
        assert p.active_streams >= 1

    def test_descending_run_does_not_allocate(self):
        p = make()
        for line in (10, 9, 8, 7):
            assert not p.on_miss(line).allocated

    def test_stream_capacity_lru(self):
        p = make(n_streams=2)
        for base in (100, 200, 300):  # three streams, capacity two
            p.on_miss(base)
            p.on_miss(base + 1)
            p.on_miss(base + 2)
        assert p.active_streams == 2
        # The oldest stream (expecting 103) was evicted.
        assert not p.cover(103).covered


class TestCoverage:
    def _allocate(self, p, base):
        p.on_miss(base)
        p.on_miss(base + 1)
        p.on_miss(base + 2)

    def test_cover_advances_stream(self):
        p = make()
        self._allocate(p, 50)
        assert p.cover(53).covered  # next expected line
        assert p.cover(54).covered  # stream advanced
        assert not p.cover(53).covered  # behind the stream now

    def test_cover_counts_prefetches(self):
        p = make()
        self._allocate(p, 50)
        outcome = p.cover(53)
        assert outcome.l1_prefetches == 1
        assert outcome.l2_prefetches == 1

    def test_cover_miss_for_unknown_line(self):
        p = make()
        assert not p.cover(999).covered

    def test_reset(self):
        p = make()
        self._allocate(p, 10)
        p.reset()
        assert p.active_streams == 0
        assert not p.cover(13).covered


def test_interleaved_streams_coexist():
    """Two concurrent scans build two streams despite interleaving."""
    p = make(n_streams=4)
    for i in range(3):
        p.on_miss(100 + i)
        p.on_miss(500 + i)
    assert p.active_streams == 2
    assert p.cover(103).covered
    assert p.cover(503).covered
