"""Tests for code pools and phase profiles."""

import random

import pytest

from repro.config import JvmConfig, MachineConfig
from repro.cpu import regions as R
from repro.cpu.phases import (
    GC_BIAS,
    MONO_POLY,
    MUTATOR_POLY,
    CodePool,
    PhaseDescriptor,
    PhaseProfile,
    build_pool,
    gc_mark_profile,
    gc_sweep_profile,
    idle_profile,
    kernel_profile,
    site_id,
)
from repro.cpu.regions import AddressSpace


@pytest.fixture(scope="module")
def space():
    return AddressSpace.build(MachineConfig(), JvmConfig())


@pytest.fixture()
def pool(space):
    rng = random.Random(1)
    region = space[R.CODE_NATIVE]
    return build_pool(
        rng,
        region.base,
        region.size_bytes,
        n_units=50,
        mean_size=1024,
        weights=[1.0 / (i + 1) for i in range(50)],
    )


class TestSiteId:
    def test_deterministic(self):
        assert site_id(3, 4) == site_id(3, 4)

    def test_spreads(self):
        ids = {site_id(u, i) % 64 for u in range(10) for i in range(10)}
        assert len(ids) > 30  # well spread over a 64-entry table


class TestBuildPool:
    def test_units_within_region(self, space, pool):
        region = space[R.CODE_NATIVE]
        for unit in pool.units:
            assert region.base <= unit.base < region.end

    def test_every_unit_has_sites(self, pool):
        for unit in pool.units:
            assert unit.cond_sites
            # Exactly one indirect site per unit (see phases.py).
            assert len(unit.ind_sites) == 1

    def test_biases_within_classes(self, space):
        rng = random.Random(2)
        region = space[R.CODE_GC]
        p = build_pool(
            rng, region.base, region.size_bytes, 5, 512, [1.0] * 5,
            bias_classes=GC_BIAS, poly_classes=MONO_POLY,
        )
        for unit in p.units:
            for _, bias in unit.cond_sites:
                assert 0.96 <= bias <= 0.99
            for site in unit.ind_sites:
                assert not site.polymorphic

    def test_weight_mismatch_rejected(self, space):
        region = space[R.CODE_GC]
        with pytest.raises(ValueError):
            build_pool(random.Random(0), region.base, region.size_bytes, 5, 512, [1.0])

    def test_indirect_target_distributions_normalized(self, pool):
        for unit in pool.units:
            for site in unit.ind_sites:
                assert site.cum_weights[-1] == pytest.approx(1.0)
                assert len(site.cum_weights) == len(site.targets)

    def test_pick_target_respects_dominance(self, pool):
        rng = random.Random(3)
        poly_sites = [
            s for u in pool.units for s in u.ind_sites if len(s.targets) in (2, 3)
        ]
        assert poly_sites
        site = poly_sites[0]
        draws = [site.pick_target(rng) for _ in range(500)]
        dominant = draws.count(site.targets[0]) / len(draws)
        assert dominant > 0.85  # sticky receiver types


class TestCodePool:
    def test_weighted_pick_prefers_head(self, pool):
        rng = random.Random(4)
        picks = [pool.pick(rng).uid for _ in range(1000)]
        head_share = sum(1 for p in picks if p < 5) / len(picks)
        assert head_share > 0.4

    def test_sample_active_distinct(self, pool):
        rng = random.Random(5)
        active = pool.sample_active(rng, 20)
        assert len({u.uid for u in active}) == len(active)
        assert 1 <= len(active) <= 20

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            CodePool([])


class TestPhaseProfiles:
    def test_builders_produce_valid_profiles(self, space):
        rng = random.Random(6)
        for builder in (gc_mark_profile, gc_sweep_profile, kernel_profile, idle_profile):
            profile = builder(rng, space)
            assert sum(w for _, w in profile.load_mix) == pytest.approx(1.0)
            assert sum(w for _, w in profile.store_mix) == pytest.approx(1.0)
            assert profile.block_mean >= 1.0

    def test_gc_profiles_are_predictable_and_lock_free(self, space):
        rng = random.Random(7)
        mark = gc_mark_profile(rng, space)
        kernel = kernel_profile(rng, space)
        assert mark.larx_per_instr < kernel.larx_per_instr / 10
        assert mark.sync_per_instr < kernel.sync_per_instr / 10
        assert mark.indirect_fraction < 0.02

    def test_gc_branch_density_exceeds_mutator(self, space):
        """Shorter blocks mean more branches per instruction (the
        Figure 6 GC signature)."""
        rng = random.Random(8)
        mark = gc_mark_profile(rng, space)
        assert mark.block_mean < 7.0

    def test_invalid_mix_rejected(self, space, pool):
        with pytest.raises(ValueError):
            PhaseProfile(
                name="bad",
                code_pool=pool,
                code_region=R.CODE_NATIVE,
                active_units=4,
                block_mean=6.0,
                mem_per_instr=0.5,
                load_fraction=0.6,
                load_mix=((R.STACK, 0.5),),  # does not sum to 1
                store_mix=((R.STACK, 1.0),),
            )


class TestPhaseDescriptor:
    def test_fractions_must_sum_to_one(self, space):
        rng = random.Random(9)
        idle = idle_profile(rng, space)
        with pytest.raises(ValueError):
            PhaseDescriptor(slices=((idle, 0.4),))
        PhaseDescriptor(slices=((idle, 1.0),))  # valid
