"""Cross-config lane packing must not change any lane's result.

A :meth:`~repro.cpu.vector.VectorBatchEngine.packed` engine runs lanes
from *many* campaigns (same :func:`~repro.cpu.vector.pack_key`) in one
numpy sweep; each :class:`~repro.cpu.vector.PackGroup` brings its own
address space, warm snapshot and per-lane RNG forks.  The promise the
sweep planner builds on:

* every packed lane is bit-identical to the same lane run in its own
  single-group engine (which tests/cpu/test_vector_engine.py anchors
  to the serial ``oracle_window``);
* the packing *order* of groups never changes any lane's result
  (checked property-style over permutations);
* configs with different machine geometry get different pack keys, so
  they are never packed together in the first place.

RNG discipline: ``RngFactory.fork`` streams are cached mutable
``random.Random`` objects, so every engine construction gets **fresh**
lane forks — reusing lane tuples across two engines would replay
already-advanced streams and diverge for the wrong reason.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    CacheGeometry,
    JvmConfig,
    MachineConfig,
    SamplingConfig,
)
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.phases import (
    PhaseDescriptor,
    gc_mark_profile,
    gc_sweep_profile,
    idle_profile,
    interpreter_profile,
    kernel_profile,
)
from repro.cpu.regions import AddressSpace
from repro.cpu.vector import (
    HardwareSnapshot,
    PackGroup,
    VectorBatchEngine,
    oracle_window,
    pack_key,
)
from repro.util.rng import RngFactory

SEED = 20260808
WINDOW_CYCLES = 2500

#: Three address spaces over the same machine geometry — the packed
#: engine's per-group axis (think: three catalog configs that differ
#: in JVM parameters but share the hardware model).
JVM_VARIANTS = (
    JvmConfig(),
    JvmConfig(heap_mb=512, live_set_mb=120.0),
    JvmConfig(heap_large_pages=False),
)


@pytest.fixture(scope="module")
def world():
    machine = MachineConfig()
    spaces = [AddressSpace.build(machine, jvm) for jvm in JVM_VARIANTS]
    return machine, spaces


def _descriptors(space, n, salt=7):
    rng = random.Random(salt)
    profiles = [
        kernel_profile(rng, space),
        gc_mark_profile(rng, space),
        gc_sweep_profile(rng, space),
        idle_profile(rng, space),
        interpreter_profile(rng, space),
    ]
    out = []
    for i in range(n):
        f = 0.2 + 0.1 * (i % 3)
        out.append(
            PhaseDescriptor(
                slices=(
                    (profiles[i % 5], f),
                    (profiles[(i + 2) % 5], 0.6 - f),
                    (profiles[(i + 3) % 5], 0.4),
                )
            )
        )
    return out


def _fresh_lanes(space, n, seed_salt):
    """Fresh per-lane forks — MUST be rebuilt for every engine."""
    root = RngFactory(SEED + seed_salt)
    return [
        (desc, root.fork(f"cpu.vec.w{i}"))
        for i, desc in enumerate(_descriptors(space, n, salt=seed_salt))
    ]


def _warm_snapshot(machine, space, windows=2):
    core = CoreModel(
        machine,
        space,
        StaticSchedule(_descriptors(space, 1)[0]),
        SamplingConfig(window_cycles=WINDOW_CYCLES),
        RngFactory(99),
    )
    core.warm_up(range(windows))
    return HardwareSnapshot.capture(core)


#: (space index, lane count, warm?, seed salt) per group — mixed lane
#: counts, mixed cold/warm starts, three distinct address spaces.
GROUP_SHAPES = ((0, 3, True, 1), (1, 2, False, 2), (2, 4, True, 3))


def _build_groups(machine, spaces, shapes=GROUP_SHAPES):
    groups = []
    for space_idx, n_lanes, warm, salt in shapes:
        space = spaces[space_idx]
        snapshot = _warm_snapshot(machine, space) if warm else None
        groups.append(
            PackGroup(space, _fresh_lanes(space, n_lanes, salt), snapshot)
        )
    return groups


class TestPackKey:
    def test_equal_configs_share_a_key(self):
        sampling = SamplingConfig(window_cycles=20000)
        assert pack_key(MachineConfig(), sampling) == pack_key(
            MachineConfig(), sampling
        )

    def test_machine_geometry_changes_the_key(self):
        sampling = SamplingConfig(window_cycles=20000)
        small_l1d = MachineConfig(l1d=CacheGeometry(16 * 1024, 128, 2, "fifo"))
        assert pack_key(MachineConfig(), sampling) != pack_key(
            small_l1d, sampling
        )

    def test_window_budget_changes_the_key(self):
        machine = MachineConfig()
        assert pack_key(machine, SamplingConfig(window_cycles=20000)) != (
            pack_key(machine, SamplingConfig(window_cycles=10000))
        )


class TestPackedEquivalence:
    def test_packed_lanes_bit_identical_to_single_engines(self, world):
        machine, spaces = world
        sampling = SamplingConfig(window_cycles=WINDOW_CYCLES)
        got = VectorBatchEngine.packed(
            machine, sampling, _build_groups(machine, spaces)
        ).run()
        offset = 0
        for group in _build_groups(machine, spaces):
            want = VectorBatchEngine(
                machine, group.space, sampling, group.lanes, group.snapshot
            ).run()
            for lane, w in enumerate(want):
                g = got[offset + lane]
                assert dict(g.counts) == dict(w.counts), (
                    f"packed lane {offset + lane} diverged"
                )
            offset += len(group.lanes)
        assert offset == len(got)

    def test_packed_lane_matches_serial_oracle(self, world):
        """Anchor straight to the serial core, skipping the single engine."""
        machine, spaces = world
        sampling = SamplingConfig(window_cycles=WINDOW_CYCLES)
        got = VectorBatchEngine.packed(
            machine, sampling, _build_groups(machine, spaces)
        ).run()
        offset = 0
        for group in _build_groups(machine, spaces):
            for lane, (desc, fork) in enumerate(group.lanes):
                want = oracle_window(
                    machine, group.space, desc, sampling, fork, group.snapshot
                )
                assert dict(got[offset + lane].counts) == dict(want.counts)
            offset += len(group.lanes)

    def test_single_group_pack_equals_plain_engine(self, world):
        machine, spaces = world
        sampling = SamplingConfig(window_cycles=WINDOW_CYCLES)
        shapes = (GROUP_SHAPES[0],)
        got = VectorBatchEngine.packed(
            machine, sampling, _build_groups(machine, spaces, shapes)
        ).run()
        (group,) = _build_groups(machine, spaces, shapes)
        want = VectorBatchEngine(
            machine, group.space, sampling, group.lanes, group.snapshot
        ).run()
        assert [dict(s.counts) for s in got] == [dict(s.counts) for s in want]

    def test_empty_groups_run_to_empty(self, world):
        machine, _spaces = world
        sampling = SamplingConfig(window_cycles=WINDOW_CYCLES)
        assert VectorBatchEngine.packed(machine, sampling, []).run() == []


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(order=st.permutations(range(len(GROUP_SHAPES))))
def test_pack_order_never_changes_a_lane(order):
    """Permuting group order permutes the output blocks, nothing else."""
    machine = MachineConfig()
    spaces = [AddressSpace.build(machine, jvm) for jvm in JVM_VARIANTS]
    sampling = SamplingConfig(window_cycles=WINDOW_CYCLES)
    shapes = [GROUP_SHAPES[i] for i in order]
    got = VectorBatchEngine.packed(
        machine, sampling, _build_groups(machine, spaces, shapes)
    ).run()
    offset = 0
    for space_idx, n_lanes, warm, salt in shapes:
        space = spaces[space_idx]
        snapshot = _warm_snapshot(machine, space) if warm else None
        want = VectorBatchEngine(
            machine,
            space,
            sampling,
            _fresh_lanes(space, n_lanes, salt),
            snapshot,
        ).run()
        for lane, w in enumerate(want):
            assert dict(got[offset + lane].counts) == dict(w.counts), (
                f"group order {order}: lane {offset + lane} diverged"
            )
        offset += n_lanes
