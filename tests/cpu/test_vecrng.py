"""VectorMT must be word-for-word CPython's Mersenne Twister."""

import random

import numpy as np
import pytest

from repro.cpu.vecrng import VectorMT, _temper, _twist_rows

N_LANES = 37


@pytest.fixture()
def pair():
    seeds = [1000 + 17 * i for i in range(N_LANES)]
    return VectorMT.from_seeds(seeds), [random.Random(s) for s in seeds]


def test_twist_and_temper_match_cpython():
    """250k words per lane: the raw word stream is identical."""
    rnd = random.Random(99)
    vec = VectorMT([random.Random(99)])
    lane = np.array([0], dtype=np.int64)
    for _ in range(2500):
        got = int(vec.getrandbits(lane, 32)[0])
        assert got == rnd.getrandbits(32)


def test_random_matches_interleaved_subsets(pair):
    vec, serials = pair
    rng = random.Random(5)
    for _ in range(400):
        chosen = sorted(rng.sample(range(N_LANES), rng.randint(1, N_LANES)))
        lanes = np.array(chosen, dtype=np.int64)
        got = vec.random(lanes)
        want = [serials[i].random() for i in chosen]
        assert got.tolist() == want


def test_getrandbits_mixed_widths(pair):
    vec, serials = pair
    rng = random.Random(6)
    for _ in range(300):
        chosen = sorted(rng.sample(range(N_LANES), rng.randint(1, N_LANES)))
        lanes = np.array(chosen, dtype=np.int64)
        ks = [rng.randint(1, 32) for _ in chosen]
        got = vec.getrandbits(lanes, np.array(ks))
        want = [serials[i].getrandbits(k) for i, k in zip(chosen, ks)]
        assert got.tolist() == want


def test_randbelow_rejection_consumes_same_words(pair):
    vec, serials = pair
    rng = random.Random(7)
    for _ in range(300):
        chosen = sorted(rng.sample(range(N_LANES), rng.randint(1, N_LANES)))
        lanes = np.array(chosen, dtype=np.int64)
        ns = [rng.choice([1, 2, 3, 5, 19, 37, 1000, 2**20 + 7]) for _ in chosen]
        got = vec.randbelow(lanes, np.array(ns))
        want = [serials[i]._randbelow(n) for i, n in zip(chosen, ns)]
        assert got.tolist() == want
    # After thousands of mixed draws the streams still agree exactly.
    all_lanes = np.arange(N_LANES, dtype=np.int64)
    assert vec.random(all_lanes).tolist() == [r.random() for r in serials]


def test_random_multi_matches_consecutive_draws(pair):
    vec, serials = pair
    rng = random.Random(8)
    for _ in range(120):
        chosen = sorted(rng.sample(range(N_LANES), rng.randint(1, N_LANES)))
        lanes = np.array(chosen, dtype=np.int64)
        m = rng.randint(1, 9)
        got = vec.random_multi(lanes, m)
        assert got.shape == (len(chosen), m)
        want = [[serials[i].random() for _ in range(m)] for i in chosen]
        assert got.tolist() == want
    # Large m forces the wide-lookahead resync path repeatedly.
    lanes = np.arange(N_LANES, dtype=np.int64)
    for _ in range(40):
        got = vec.random_multi(lanes, 40)
        want = [[r.random() for _ in range(40)] for r in serials]
        assert got.tolist() == want


def test_uniform_bitwise(pair):
    vec, serials = pair
    lanes = np.arange(N_LANES, dtype=np.int64)
    got = vec.uniform(lanes, 1.0 - 0.5, 1.0 + 0.5)
    want = [r.uniform(0.5, 1.5) for r in serials]
    assert got.tolist() == want


def test_to_random_round_trip(pair):
    vec, serials = pair
    lanes = np.arange(N_LANES, dtype=np.int64)
    vec.random(lanes)
    for s in serials:
        s.random()
    # Export a lane mid-block, draw scalar, re-import, continue vector.
    scalar = vec.to_random(11)
    assert scalar.getstate() == serials[11].getstate()
    for _ in range(700):  # crosses a twist boundary
        assert scalar.random() == serials[11].random()
    vec.load_random(11, scalar)
    assert vec.random(lanes).tolist() == [r.random() for r in serials]


def test_twist_rows_pure_function():
    rnd = random.Random(3)
    mt = np.array([rnd.getstate()[1][:624]], dtype=np.uint32)
    twisted = _twist_rows(mt.copy())
    # Advancing the serial generator 624 words forces exactly one twist.
    for _ in range(624 - rnd.getstate()[1][624]):
        rnd.getrandbits(32)
    assert rnd.getstate()[1][624] == 624
    rnd.getrandbits(32)
    after = np.array(rnd.getstate()[1][:624], dtype=np.uint32)
    assert np.array_equal(twisted[0], after)
