"""Tests for ERAT/TLB translation, especially the large-page semantics
the paper's Section 4.2.2 depends on."""

import random

import pytest

from repro.config import JvmConfig, MachineConfig, TranslationConfig
from repro.cpu.regions import (
    AddressSpace,
    DB_BUFFER,
    HEAP_COLD,
    STACK,
)
from repro.cpu.translation import TranslationUnit


@pytest.fixture()
def unit():
    return TranslationUnit(TranslationConfig())


@pytest.fixture()
def space():
    return AddressSpace.build(MachineConfig(), JvmConfig())


class TestEratBehavior:
    def test_first_access_misses_then_hits(self, unit, space):
        region = space[STACK]
        addr = region.base
        first = unit.translate_data(addr, region)
        assert first.erat_miss
        second = unit.translate_data(addr, region)
        assert not second.erat_miss

    def test_erat_is_4k_granular_even_for_large_pages(self, unit, space):
        """Two addresses in the same 16 MB page but different 4 KB
        granules each miss the ERAT — large pages do not relieve ERAT
        pressure (the paper: 'room for improving ERAT hit rates')."""
        region = space[HEAP_COLD]
        assert region.page_bytes == 16 * 1024 * 1024
        a = region.base
        b = region.base + 8192  # same large page, different granule
        assert unit.translate_data(a, region).erat_miss
        result_b = unit.translate_data(b, region)
        assert result_b.erat_miss

    def test_erat_capacity_thrash(self, space):
        config = TranslationConfig(derat_entries=8, erat_associativity=2)
        unit = TranslationUnit(config)
        region = space[DB_BUFFER]
        addrs = [region.base + i * 4096 for i in range(64)]
        for a in addrs:
            unit.translate_data(a, region)
        # Revisit: most granules should have been evicted.
        misses = sum(
            unit.translate_data(a, region).erat_miss for a in addrs
        )
        assert misses > len(addrs) // 2


class TestTlbBehavior:
    def test_large_page_region_occupies_few_tlb_entries(self, unit, space):
        """Touching many granules of a large-page region misses the
        ERAT repeatedly but the TLB only once per 16 MB page."""
        region = space[HEAP_COLD]
        tlb_misses = 0
        for i in range(32):
            result = unit.translate_data(region.base + i * 4096, region)
            if result.tlb_miss:
                tlb_misses += 1
        assert tlb_misses == 1  # all granules share one large page

    def test_small_page_region_misses_per_page(self, unit, space):
        region = space[DB_BUFFER]
        tlb_misses = 0
        for i in range(32):
            result = unit.translate_data(region.base + i * 4096, region)
            if result.tlb_miss:
                tlb_misses += 1
        assert tlb_misses == 32  # each 4 KB page is new

    def test_tlb_hit_requires_erat_miss(self, unit, space):
        """TLB statistics only accumulate on the ERAT-miss path."""
        region = space[STACK]
        unit.translate_data(region.base, region)
        before = unit.tlb.data_hits + unit.tlb.data_misses
        unit.translate_data(region.base, region)  # ERAT hit now
        after = unit.tlb.data_hits + unit.tlb.data_misses
        assert after == before

    def test_inst_and_data_sides_counted_separately(self, unit, space):
        region = space[DB_BUFFER]
        unit.translate_inst(region.base, region)
        assert unit.tlb.inst_misses == 1
        assert unit.tlb.data_misses == 0

    def test_page_size_classes_do_not_collide(self, unit, space):
        """Page number 1 at 4 KB must not alias page number 1 at 16 MB."""
        small_region = space[STACK]
        large_region = space[HEAP_COLD]
        # Force both sides to insert page entries, then verify that a
        # large-page lookup does not hit a small-page entry.
        unit.translate_data(small_region.base, small_region)
        r = unit.translate_data(large_region.base, large_region)
        assert r.tlb_miss  # distinct key despite possible number clash


class TestUnifiedCapacityCoupling:
    def test_data_pressure_evicts_inst_entries(self, space):
        """The mechanism behind the paper's +15% ITLB improvement from
        *heap* large pages: a unified TLB couples the two sides."""
        config = TranslationConfig(tlb_entries=16, tlb_associativity=4)
        unit = TranslationUnit(config)
        rng = random.Random(1)
        code = space[DB_BUFFER]  # stand-in for code pages
        inst_addr = code.base
        unit.translate_inst(inst_addr, code)
        # Flood the TLB with data pages.
        data = space[DB_BUFFER]
        for _ in range(200):
            addr = data.base + rng.randrange(data.n_pages) * 4096
            unit.translate_data(addr, data)
        # Thrash the IERAT too, so the recheck reaches the TLB instead
        # of being satisfied by the (untouched) ERAT entry.
        for i in range(1, 400):
            unit.translate_inst(code.base + i * 4096, code)
        result = unit.translate_inst(inst_addr, code)
        assert result.erat_miss and result.tlb_miss

    def test_hit_rate_accessors(self, unit, space):
        region = space[DB_BUFFER]
        for i in range(4):
            unit.translate_data(region.base + i * 4096, region)
        assert 0.0 <= unit.dtlb_hit_rate <= 1.0
        assert unit.itlb_hit_rate == 0.0  # no inst lookups yet


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        TranslationUnit(TranslationConfig(tlb_entries=10, tlb_associativity=4))
    with pytest.raises(ValueError):
        TranslationUnit(TranslationConfig(derat_entries=9, erat_associativity=2))
