"""Tests for the memory system (L1s + prefetcher + backing)."""

import random

import pytest

from repro.config import JvmConfig, MachineConfig
from repro.cpu import regions as R
from repro.cpu.hierarchy import MemorySystem
from repro.cpu.regions import AddressSpace
from repro.cpu.sources import DataSource, InstSource
from repro.hpm.counters import CounterBank
from repro.hpm.events import Event


@pytest.fixture()
def setup():
    machine = MachineConfig()
    space = AddressSpace.build(machine, JvmConfig())
    bank = CounterBank()
    mem = MemorySystem(machine, bank, random.Random(7))
    return machine, space, bank, mem


class TestLoads:
    def test_load_counts_reference(self, setup):
        _, space, bank, mem = setup
        mem.load(space[R.STACK].base, space[R.STACK])
        assert bank.value(Event.PM_LD_REF_L1) == 1

    def test_load_miss_then_hit(self, setup):
        _, space, bank, mem = setup
        region = space[R.STACK]
        source, _ = mem.load(region.base, region)
        assert source is not None
        assert bank.value(Event.PM_LD_MISS_L1) == 1
        source2, _ = mem.load(region.base, region)
        assert source2 is None  # now cached
        assert bank.value(Event.PM_LD_MISS_L1) == 1

    def test_miss_source_counted(self, setup):
        _, space, bank, mem = setup
        region = space[R.STACK]  # backing is 100% L2
        source, _ = mem.load(region.base, region)
        assert source is DataSource.L2
        assert bank.value(Event.PM_DATA_FROM_L2) == 1

    def test_sequential_misses_allocate_stream_and_cover(self, setup):
        _, space, bank, mem = setup
        region = space[R.DB_BUFFER]
        line = 128
        for i in range(3):
            mem.load(region.base + i * line, region)
        assert bank.value(Event.PM_STREAM_ALLOC) == 1
        source, outcome = mem.load(region.base + 3 * line, region)
        assert outcome.covered
        assert source is None
        assert bank.value(Event.PM_L1_PREF) == 1


class TestStores:
    def test_store_miss_does_not_allocate(self, setup):
        """POWER4 L1D store misses write through without filling."""
        _, space, bank, mem = setup
        region = space[R.HEAP_ALLOC]
        addr = region.base + 5 * 128
        assert not mem.store(addr, region)
        assert bank.value(Event.PM_ST_MISS_L1) == 1
        # A subsequent *load* of the same line still misses.
        source, _ = mem.load(addr, region)
        assert source is not None

    def test_store_hits_loaded_line(self, setup):
        _, space, bank, mem = setup
        region = space[R.STACK]
        mem.load(region.base, region)
        assert mem.store(region.base + 8, region)
        assert bank.value(Event.PM_ST_MISS_L1) == 0

    def test_store_gathering(self, setup):
        """Back-to-back stores to one line merge in the SRQ."""
        _, space, bank, mem = setup
        region = space[R.HEAP_ALLOC]
        addr = region.base + 999 * 128
        mem.store(addr, region)
        assert mem.store(addr + 32, region)  # gathered
        assert bank.value(Event.PM_ST_MISS_L1) == 1


class TestFetch:
    def test_fetch_hit_and_miss_counters(self, setup):
        _, space, bank, mem = setup
        region = space[R.CODE_JIT]
        source = mem.fetch(region.base, region)
        assert source in (InstSource.L2, InstSource.L3, InstSource.MEM)
        assert bank.value(Event.PM_INST_FROM_L1) == 0
        source2 = mem.fetch(region.base, region)
        assert source2 is InstSource.L1
        assert bank.value(Event.PM_INST_FROM_L1) == 1

    def test_reset_structures(self, setup):
        _, space, _, mem = setup
        region = space[R.CODE_JIT]
        mem.fetch(region.base, region)
        mem.reset_structures()
        assert mem.fetch(region.base, region) is not InstSource.L1


class TestBackingDistributionIntegration:
    def test_cold_heap_sources_split_l3_memory(self, setup):
        _, space, bank, mem = setup
        region = space[R.HEAP_COLD]
        rng = random.Random(11)
        for _ in range(800):
            mem.load(region.random_address(rng), region)
        l3 = bank.value(Event.PM_DATA_FROM_L3)
        memory = bank.value(Event.PM_DATA_FROM_MEM)
        assert l3 > memory  # backing is 70/30
        assert memory > 0
