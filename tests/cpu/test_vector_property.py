"""Property-based lane equivalence: random cores, random seeds.

The batch engine's core promise — every lane bit-identical to the
serial oracle (:func:`repro.cpu.vector.oracle_window`) given the same
descriptor, RNG fork and starting hardware state — must hold not just
for the default machine but across the *geometry space* the config
admits: cache shapes and policies, predictor table sizes, prefetcher
depths, ERAT/TLB layouts, window budgets, lane counts and seeds.

Two tiers:

* tier-1: three pinned configurations spanning the interesting axes
  (FIFO vs LRU L1, direct-mapped vs wide associativity, small vs large
  predictor tables), deterministic and fast;
* ``slow``: a Hypothesis sweep drawing whole configurations at random.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    BranchPredictorConfig,
    CacheGeometry,
    JvmConfig,
    MachineConfig,
    PrefetcherConfig,
    SamplingConfig,
    TranslationConfig,
)
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.phases import (
    PhaseDescriptor,
    gc_mark_profile,
    gc_sweep_profile,
    idle_profile,
    interpreter_profile,
    kernel_profile,
)
from repro.cpu.regions import AddressSpace
from repro.cpu.vector import (
    HardwareSnapshot,
    VectorBatchEngine,
    oracle_window,
    vector_supported,
)
from repro.util.rng import RngFactory

KB = 1024


def _build_machine(
    l1_line: int,
    l1_assoc: int,
    l1_policy: str,
    dir_entries: int,
    tgt_entries: int,
    erat_assoc: int,
    tlb_entries: int,
    pf_depth: int,
    pf_after: int,
) -> MachineConfig:
    l1 = CacheGeometry(32 * KB, l1_line, l1_assoc, l1_policy)
    return MachineConfig(
        l1i=l1,
        l1d=l1,
        translation=TranslationConfig(
            erat_associativity=erat_assoc, tlb_entries=tlb_entries
        ),
        branch=BranchPredictorConfig(
            direction_entries=dir_entries, target_entries=tgt_entries
        ),
        prefetcher=PrefetcherConfig(depth=pf_depth, allocate_after=pf_after),
    )


def _assert_lanes_match(machine, seed, window_cycles, n_lanes, warm):
    space = AddressSpace.build(machine, JvmConfig())
    prof_rng = random.Random(seed)
    profiles = [
        kernel_profile(prof_rng, space),
        gc_mark_profile(prof_rng, space),
        gc_sweep_profile(prof_rng, space),
        idle_profile(prof_rng, space),
        interpreter_profile(prof_rng, space),
    ]
    descriptors = []
    for i in range(n_lanes):
        f = 0.15 + 0.1 * (i % 4)
        descriptors.append(
            PhaseDescriptor(
                slices=(
                    (profiles[i % 5], f),
                    (profiles[(i + 2) % 5], 0.55 - f),
                    (profiles[(i + 4) % 5], 0.45),
                )
            )
        )
    sampling = SamplingConfig(window_cycles=window_cycles)

    def lanes():
        root = RngFactory(seed)
        return [
            (desc, root.fork(f"lane{i}"))
            for i, desc in enumerate(descriptors)
        ]

    probe = CoreModel(
        machine, space, StaticSchedule(descriptors[0]), sampling, RngFactory(1)
    )
    ok, reason = vector_supported(probe, space)
    assert ok, reason
    snapshot = None
    if warm:
        probe.warm_up(range(1))
        snapshot = HardwareSnapshot.capture(probe)
    got = VectorBatchEngine(machine, space, sampling, lanes(), snapshot).run()
    for lane, (desc, fork) in enumerate(lanes()):
        want = oracle_window(machine, space, desc, sampling, fork, snapshot)
        assert dict(got[lane].counts) == dict(want.counts), (
            f"lane {lane} diverged (seed={seed}, wc={window_cycles})"
        )


#: Three pinned configurations spanning the interesting axes.
TIER1_CASES = [
    # POWER4-like default: 2-way FIFO L1, big tables.
    ("default", MachineConfig(), 11, 2500, 3, True),
    # Direct-mapped LRU L1, small predictor tables (heavy aliasing).
    (
        "direct-mapped",
        _build_machine(64, 1, "lru", 1024, 512, 8, 256, 2, 1),
        22007,
        2000,
        2,
        False,
    ),
    # Wide associativity, deep prefetcher, small TLB.
    (
        "wide-assoc",
        _build_machine(128, 8, "lru", 4096, 2048, 16, 512, 6, 3),
        7,
        2000,
        3,
        True,
    ),
]


@pytest.mark.parametrize(
    "machine,seed,wc,n_lanes,warm",
    [case[1:] for case in TIER1_CASES],
    ids=[case[0] for case in TIER1_CASES],
)
def test_pinned_configs_lane_equivalent(machine, seed, wc, n_lanes, warm):
    _assert_lanes_match(machine, seed, wc, n_lanes, warm)


@st.composite
def machines(draw):
    l1_line = draw(st.sampled_from([64, 128]))
    l1_assoc = draw(st.sampled_from([1, 2, 4]))
    l1_policy = draw(st.sampled_from(["fifo", "lru"]))
    dir_entries = draw(st.sampled_from([1024, 4096, 16384]))
    tgt_entries = draw(st.sampled_from([512, 2048, 8192]))
    erat_assoc = draw(st.sampled_from([8, 16]))
    tlb_entries = draw(st.sampled_from([256, 1024]))
    pf_depth = draw(st.integers(min_value=2, max_value=6))
    pf_after = draw(st.integers(min_value=1, max_value=3))
    return _build_machine(
        l1_line,
        l1_assoc,
        l1_policy,
        dir_entries,
        tgt_entries,
        erat_assoc,
        tlb_entries,
        pf_depth,
        pf_after,
    )


@pytest.mark.slow
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    machine=machines(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    wc=st.integers(min_value=1200, max_value=3500),
    n_lanes=st.integers(min_value=1, max_value=4),
    warm=st.booleans(),
)
def test_random_configs_lane_equivalent(machine, seed, wc, n_lanes, warm):
    _assert_lanes_match(machine, seed, wc, n_lanes, warm)
