"""The batch engine must be lane-for-lane bit-identical to the serial core.

Every lane of a :class:`~repro.cpu.vector.VectorBatchEngine` promises
the exact :class:`~repro.hpm.counters.CounterSnapshot` that a stock
serial :class:`~repro.cpu.core_model.CoreModel` produces for the same
descriptor, RNG fork and starting hardware state
(:func:`~repro.cpu.vector.oracle_window`).  These tests drive that
promise directly — cold and warm snapshots, heterogeneous descriptors,
per-lane hardware statistics — plus the eligibility guard that keeps
subclassed/patched cores off the vector path.
"""

import random

import pytest

from repro.config import JvmConfig, MachineConfig, SamplingConfig
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.phases import (
    PhaseDescriptor,
    gc_mark_profile,
    gc_sweep_profile,
    idle_profile,
    interpreter_profile,
    kernel_profile,
)
from repro.cpu.regions import AddressSpace
from repro.cpu.vector import (
    HardwareSnapshot,
    VectorBatchEngine,
    oracle_window,
    vector_supported,
)
from repro.util.rng import RngFactory

SEED = 20260808


@pytest.fixture(scope="module")
def world():
    machine = MachineConfig()
    space = AddressSpace.build(machine, JvmConfig())
    return machine, space


def _descriptors(space, n):
    """``n`` heterogeneous descriptors over all five builtin profiles."""
    rng = random.Random(7)
    profiles = [
        kernel_profile(rng, space),
        gc_mark_profile(rng, space),
        gc_sweep_profile(rng, space),
        idle_profile(rng, space),
        interpreter_profile(rng, space),
    ]
    out = []
    for i in range(n):
        a = profiles[i % 5]
        b = profiles[(i + 2) % 5]
        c = profiles[(i + 3) % 5]
        f = 0.2 + 0.1 * (i % 3)
        out.append(
            PhaseDescriptor(slices=((a, f), (b, 0.6 - f), (c, 0.4)))
        )
    return out


def _lanes(space, n):
    root = RngFactory(SEED)
    return [
        (desc, root.fork(f"cpu.vec.w{i}"))
        for i, desc in enumerate(_descriptors(space, n))
    ]


def _warm_snapshot(machine, space):
    """Hardware state after two serial windows — a realistic warm start."""
    descriptor = _descriptors(space, 1)[0]
    core = CoreModel(
        machine,
        space,
        StaticSchedule(descriptor),
        SamplingConfig(window_cycles=20000),
        RngFactory(99),
    )
    core.warm_up(range(2))
    return HardwareSnapshot.capture(core)


class TestEligibility:
    def test_stock_core_supported(self, world):
        machine, space = world
        core = CoreModel(
            machine,
            space,
            StaticSchedule(_descriptors(space, 1)[0]),
            SamplingConfig(window_cycles=1000),
            RngFactory(1),
        )
        ok, reason = vector_supported(core, space)
        assert ok, reason

    def test_subclassed_branch_unit_rejected(self, world):
        from repro.cpu.branch import BranchUnit

        class Passthrough(BranchUnit):
            pass

        class Subclassed(CoreModel):
            branch_unit_cls = Passthrough

        machine, space = world
        core = Subclassed(
            machine,
            space,
            StaticSchedule(_descriptors(space, 1)[0]),
            SamplingConfig(window_cycles=1000),
            RngFactory(1),
        )
        ok, reason = vector_supported(core, space)
        assert not ok and "branch" in reason

    def test_instance_patch_rejected(self, world):
        machine, space = world
        core = CoreModel(
            machine,
            space,
            StaticSchedule(_descriptors(space, 1)[0]),
            SamplingConfig(window_cycles=1000),
            RngFactory(1),
        )
        original = core.memory.load
        core.memory.load = lambda addr, region: original(addr, region)
        ok, reason = vector_supported(core, space)
        assert not ok and "memory" in reason


class TestLaneEquivalence:
    N_LANES = 6

    def _run_both(self, machine, space, snapshot, window_cycles=30000):
        sampling = SamplingConfig(window_cycles=window_cycles)
        lanes = _lanes(space, self.N_LANES)
        engine = VectorBatchEngine(machine, space, sampling, lanes, snapshot)
        got = engine.run()
        want = [
            oracle_window(machine, space, desc, sampling, fork, snapshot)
            for desc, fork in _lanes(space, self.N_LANES)
        ]
        return engine, got, want

    def test_cold_lanes_bit_identical(self, world):
        machine, space = world
        _, got, want = self._run_both(machine, space, None)
        for lane, (g, w) in enumerate(zip(got, want)):
            assert dict(g.counts) == dict(w.counts), f"lane {lane} diverged"

    def test_warm_lanes_bit_identical(self, world):
        machine, space = world
        snapshot = _warm_snapshot(machine, space)
        _, got, want = self._run_both(machine, space, snapshot)
        for lane, (g, w) in enumerate(zip(got, want)):
            assert dict(g.counts) == dict(w.counts), f"lane {lane} diverged"

    def test_lane_hardware_statistics_match(self, world):
        machine, space = world
        snapshot = _warm_snapshot(machine, space)
        engine, _, _ = self._run_both(machine, space, snapshot)
        sampling = SamplingConfig(window_cycles=30000)
        for lane, (desc, fork) in enumerate(_lanes(space, self.N_LANES)):
            core = CoreModel(
                machine, space, StaticSchedule(desc), sampling, fork
            )
            snapshot.apply(core)
            core.execute_window(0)
            t = core.translation
            want = {
                "l1i": (core.memory.l1i.hits, core.memory.l1i.misses),
                "l1d": (core.memory.l1d.hits, core.memory.l1d.misses),
                "ierat": (t.ierat.cache.hits, t.ierat.cache.misses),
                "derat": (t.derat.cache.hits, t.derat.cache.misses),
                "tlb": (
                    t.tlb.data_hits,
                    t.tlb.data_misses,
                    t.tlb.inst_hits,
                    t.tlb.inst_misses,
                ),
            }
            assert engine.lane_hardware_state(lane) == want, f"lane {lane}"

    def test_single_lane_and_empty_batch(self, world):
        machine, space = world
        sampling = SamplingConfig(window_cycles=10000)
        assert VectorBatchEngine(machine, space, sampling, []).run() == []
        lanes = _lanes(space, 1)
        got = VectorBatchEngine(machine, space, sampling, lanes).run()
        desc, fork = _lanes(space, 1)[0]
        want = oracle_window(machine, space, desc, sampling, fork)
        assert dict(got[0].counts) == dict(want.counts)
