"""Tests for the instruction-stream generator and the core model."""

import random

import pytest

from repro.config import ExperimentConfig, JvmConfig, MachineConfig, SamplingConfig
from repro.cpu import regions as R
from repro.cpu.branch import BranchUnit
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.hierarchy import MemorySystem
from repro.cpu.phases import PhaseDescriptor, gc_mark_profile, idle_profile, kernel_profile
from repro.cpu.pipeline import PipelineAccountant
from repro.cpu.regions import AddressSpace
from repro.cpu.stream import SliceRunner
from repro.cpu.translation import TranslationUnit
from repro.hpm.counters import CounterBank
from repro.hpm.events import Event
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def machine():
    return MachineConfig()


@pytest.fixture(scope="module")
def space(machine):
    return AddressSpace.build(machine, JvmConfig())


def run_slice(machine, space, profile, cycles=30000, seed=3, warm=False):
    bank = CounterBank()
    rngs = RngFactory(seed)
    memory = MemorySystem(machine, bank, rngs.stream("b"))
    translation = TranslationUnit(machine.translation)
    branches = BranchUnit(machine.branch)

    def one_pass(limit):
        accountant = PipelineAccountant(machine.latencies, rngs.stream("p"))
        runner = SliceRunner(
            profile, space, memory, translation, branches, accountant, bank,
            rngs.stream("s"),
        )
        runner.run_until(limit)
        return accountant

    if warm:
        # Populate caches/TLBs, then discard the warm-up counts.
        one_pass(cycles)
        bank.reset()
    accountant = one_pass(cycles)
    accountant.finalize(bank)
    return bank.snapshot()


class TestSliceRunner:
    def test_reaches_cycle_budget(self, machine, space):
        profile = kernel_profile(random.Random(0), space)
        snap = run_slice(machine, space, profile, cycles=20000)
        assert snap.cycles >= 20000
        assert snap.instructions > 1000

    def test_event_mix_matches_profile(self, machine, space):
        profile = kernel_profile(random.Random(0), space)
        snap = run_slice(machine, space, profile, cycles=60000)
        n = snap.instructions
        mem_ops = snap[Event.PM_LD_REF_L1] + snap[Event.PM_ST_REF_L1]
        assert mem_ops / n == pytest.approx(profile.mem_per_instr, rel=0.15)
        loads = snap[Event.PM_LD_REF_L1]
        assert loads / mem_ops == pytest.approx(profile.load_fraction, rel=0.15)
        branches = snap[Event.PM_BR_CMPL]
        assert branches / n == pytest.approx(1.0 / profile.block_mean, rel=0.25)

    def test_larx_and_sync_densities(self, machine, space):
        profile = kernel_profile(random.Random(0), space)
        snap = run_slice(machine, space, profile, cycles=120000)
        n = snap.instructions
        assert snap[Event.PM_LARX] / n == pytest.approx(
            profile.larx_per_instr, rel=0.4
        )
        assert snap[Event.PM_SYNC_CNT] / n == pytest.approx(
            profile.sync_per_instr, rel=0.4
        )
        assert snap[Event.PM_STCX] == snap[Event.PM_LARX]
        assert snap[Event.PM_STCX_FAIL] <= snap[Event.PM_STCX]

    def test_idle_loop_is_fast_and_quiet(self, machine, space):
        profile = idle_profile(random.Random(0), space)
        snap = run_slice(machine, space, profile, cycles=30000, warm=True)
        assert snap.cpi < 1.1  # the paper's ~0.7 idle CPI
        assert snap[Event.PM_DTLB_MISS] <= 2
        assert snap[Event.PM_BR_MPRED_TA] == 0

    def test_gc_mark_touches_large_pages_only(self, machine, space):
        """GC data accesses land in the large-page heap: almost no
        D-side TLB misses (Figure 7's GC dips)."""
        profile = gc_mark_profile(random.Random(0), space)
        snap = run_slice(machine, space, profile, cycles=60000, warm=True)
        assert snap[Event.PM_DTLB_MISS] <= 3
        assert snap[Event.PM_DERAT_MISS] > 0  # ERAT still misses


class TestCoreModel:
    def make_core(self, machine, space, profile, window_cycles=15000, seed=5):
        schedule = StaticSchedule(
            PhaseDescriptor(slices=((profile, 1.0),), label="test")
        )
        sampling = SamplingConfig(window_cycles=window_cycles, warmup_windows=2)
        return CoreModel(machine, space, schedule, sampling, RngFactory(seed))

    def test_window_resets_counters_but_keeps_structures(self, machine, space):
        profile = kernel_profile(random.Random(0), space)
        core = self.make_core(machine, space, profile)
        first = core.execute_window(0)
        second = core.execute_window(1)
        # Counters are per window (roughly equal cycles), not cumulative.
        assert second.cycles < first.cycles * 1.5
        # Structures persist: the second window should fetch more from
        # the (now warm) L1I than the first.
        f1 = first[Event.PM_INST_FROM_L1] / max(1, first.instructions)
        f2 = second[Event.PM_INST_FROM_L1] / max(1, second.instructions)
        assert f2 >= f1 * 0.9

    def test_windows_consume_budget(self, machine, space):
        profile = kernel_profile(random.Random(0), space)
        core = self.make_core(machine, space, profile, window_cycles=9000)
        snap = core.execute_window(0)
        assert snap.cycles >= 9000
        assert snap.cycles < 9000 * 1.3  # no gross overshoot

    def test_multi_slice_window(self, machine, space):
        rng = random.Random(1)
        kernel = kernel_profile(rng, space)
        idle = idle_profile(rng, space)
        descriptor = PhaseDescriptor(slices=((kernel, 0.5), (idle, 0.5)))
        sampling = SamplingConfig(window_cycles=20000, warmup_windows=0)
        core = CoreModel(
            MachineConfig(), space, StaticSchedule(descriptor), sampling, RngFactory(2)
        )
        snap = core.execute_window(0)
        # SYNC-heavy kernel and quiet idle both contributed.
        assert snap[Event.PM_SYNC_CNT] > 0
        assert snap.cycles >= 20000

    def test_warm_up_counts_windows(self, machine, space):
        profile = idle_profile(random.Random(0), space)
        core = self.make_core(machine, space, profile)
        core.warm_up(range(4))
        assert core.windows_executed == 4


def test_determinism_of_core_model(space):
    cfg = ExperimentConfig()
    profile = kernel_profile(random.Random(0), space)

    def run(seed):
        schedule = StaticSchedule(PhaseDescriptor(slices=((profile, 1.0),)))
        core = CoreModel(
            cfg.machine, space, schedule,
            SamplingConfig(window_cycles=8000, warmup_windows=0),
            RngFactory(seed),
        )
        return [core.execute_window(i).counts for i in range(3)]

    assert run(11) == run(11)
    assert run(11) != run(12)
