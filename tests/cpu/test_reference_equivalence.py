"""Determinism regression: the kernel rewrite changed no golden output.

Runs the optimized :class:`~repro.cpu.core_model.CoreModel` and the
pinned pre-optimization :class:`~repro.cpu.reference.ReferenceCoreModel`
side by side on a fixed seed and asserts every per-window counter
snapshot and every piece of persistent hardware state (cache and TLB
hit/miss totals) is identical — the optimized kernels must draw the
same RNG sequence and add the same floats in the same order as the
original structures.
"""

import random

import pytest

from repro.config import JvmConfig, MachineConfig, SamplingConfig
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.phases import (
    PhaseDescriptor,
    gc_mark_profile,
    idle_profile,
    kernel_profile,
)
from repro.cpu.reference import ReferenceCoreModel
from repro.cpu.regions import AddressSpace
from repro.util.rng import RngFactory

N_WINDOWS = 8


def _build(model_cls, seed):
    machine = MachineConfig()
    space = AddressSpace.build(machine, JvmConfig())
    prof_rng = random.Random(7)
    kernel = kernel_profile(prof_rng, space)
    gc = gc_mark_profile(prof_rng, space)
    idle = idle_profile(prof_rng, space)
    descriptor = PhaseDescriptor(slices=((kernel, 0.5), (gc, 0.3), (idle, 0.2)))
    sampling = SamplingConfig(window_cycles=30000)
    return model_cls(
        machine, space, StaticSchedule(descriptor), sampling, RngFactory(seed)
    )


@pytest.fixture(scope="module", params=[42, 2007])
def models(request):
    seed = request.param
    optimized = _build(CoreModel, seed)
    reference = _build(ReferenceCoreModel, seed)
    snaps = [
        (optimized.execute_window(w), reference.execute_window(w))
        for w in range(N_WINDOWS)
    ]
    return optimized, reference, snaps


class TestSnapshotsIdentical:
    def test_every_window_bit_identical(self, models):
        _, _, snaps = models
        for w, (opt, ref) in enumerate(snaps):
            assert dict(opt.counts) == dict(ref.counts), f"window {w} diverged"

    def test_nonzero_activity(self, models):
        """Guard against vacuous equality: the windows did real work."""
        _, _, snaps = models
        total = sum(s.instructions for s, _ in snaps)
        assert total > 10_000


class TestHardwareStateIdentical:
    def test_cache_stats(self, models):
        optimized, reference, _ = models
        for attr in ("l1i", "l1d"):
            opt = getattr(optimized.memory, attr)
            ref = getattr(reference.memory, attr)
            assert (opt.hits, opt.misses) == (ref.hits, ref.misses)

    def test_translation_stats(self, models):
        optimized, reference, _ = models
        opt_t, ref_t = optimized.translation, reference.translation
        for erat in ("ierat", "derat"):
            opt_c = getattr(opt_t, erat).cache
            ref_c = getattr(ref_t, erat).cache
            assert (opt_c.hits, opt_c.misses) == (ref_c.hits, ref_c.misses)
        opt_tlb, ref_tlb = opt_t.tlb, ref_t.tlb
        assert (
            opt_tlb.data_hits,
            opt_tlb.data_misses,
            opt_tlb.inst_hits,
            opt_tlb.inst_misses,
        ) == (
            ref_tlb.data_hits,
            ref_tlb.data_misses,
            ref_tlb.inst_hits,
            ref_tlb.inst_misses,
        )

    def test_prefetcher_state(self, models):
        optimized, reference, _ = models
        assert (
            optimized.memory.prefetcher.active_streams
            == reference.memory.prefetcher.active_streams
        )


class TestInstrumentedWindowIdentical:
    """An active observability session must not perturb the kernels.

    One window of the optimized model executed *under a session* is
    compared against the uninstrumented reference — the instrumentation
    in the slice runner reads accountant totals and wall time only, so
    the counter snapshot must stay bit-identical while the session
    records real slice activity.
    """

    @pytest.fixture(scope="class")
    def window(self):
        from repro.obs import Observability, observe

        optimized = _build(CoreModel, 2007)
        reference = _build(ReferenceCoreModel, 2007)
        with observe(Observability()) as obs:
            instrumented = optimized.execute_window(0)
        baseline = reference.execute_window(0)
        return instrumented, baseline, obs

    def test_counts_bit_identical(self, window):
        instrumented, baseline, _ = window
        assert dict(instrumented.counts) == dict(baseline.counts)

    def test_session_saw_the_slices(self, window):
        _, _, obs = window
        assert obs.metrics.value("cpu.slices") >= 1
        assert obs.metrics.value("cpu.instructions") > 0
        profiles = {
            dict(s.labels).get("profile")
            for s in obs.tracer.by_category("cpu")
        }
        assert profiles  # every slice span is labeled with its phase


def test_reference_runner_never_fuses():
    reference = _build(ReferenceCoreModel, 1)
    runner = reference.slice_runner_cls(
        profile=kernel_profile(random.Random(1), reference.space),
        space=reference.space,
        memory=reference.memory,
        translation=reference.translation,
        branches=reference.branches,
        accountant=reference.accountant_cls(
            reference.machine.latencies, random.Random(2)
        ),
        counters=reference._bank,
        rng=random.Random(3),
    )
    assert not runner._can_fuse()
