"""Direct coverage of the fused-kernel fallback guard.

``SliceRunner._can_fuse`` decides between the fused kernel (reaches
past public methods into way lists and predictor tables) and
``_run_generic`` (the readable specification, driving the public
interfaces).  Nothing else in the suite exercised the generic path via
a *subclassed* collaborator, so a stale fallback would only surface in
user code.  These tests force the generic path through behaviour-
preserving subclasses and assert it stays bit-identical to the pinned
:class:`~repro.cpu.reference.ReferenceCoreModel`.
"""

import random

import pytest

from repro.config import JvmConfig, MachineConfig, SamplingConfig
from repro.cpu.branch import BranchUnit
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.phases import (
    PhaseDescriptor,
    gc_mark_profile,
    idle_profile,
    kernel_profile,
)
from repro.cpu.reference import ReferenceCoreModel
from repro.cpu.regions import AddressSpace
from repro.util.rng import RngFactory

N_WINDOWS = 4
SEED = 1311


class PassthroughBranchUnit(BranchUnit):
    """Subclass with unchanged behaviour: must still force the fallback."""


class PassthroughCache(SetAssociativeCache):
    """Same — any cache subclass invalidates the fused way-list access."""


def _build(model_cls, seed=SEED):
    machine = MachineConfig()
    space = AddressSpace.build(machine, JvmConfig())
    prof_rng = random.Random(7)
    descriptor = PhaseDescriptor(
        slices=(
            (kernel_profile(prof_rng, space), 0.5),
            (gc_mark_profile(prof_rng, space), 0.3),
            (idle_profile(prof_rng, space), 0.2),
        )
    )
    sampling = SamplingConfig(window_cycles=30000)
    return model_cls(
        machine, space, StaticSchedule(descriptor), sampling, RngFactory(seed)
    )


def _first_runner(core):
    descriptor = core.schedule.descriptor_for(0)
    return core.slice_runner_cls(
        profile=descriptor.slices[0][0],
        space=core.space,
        memory=core.memory,
        translation=core.translation,
        branches=core.branches,
        accountant=core.accountant_cls(core.machine.latencies, random.Random(2)),
        counters=core._bank,
        rng=random.Random(3),
    )


def _hardware_state(core):
    t = core.translation
    return {
        "l1i": (core.memory.l1i.hits, core.memory.l1i.misses),
        "l1d": (core.memory.l1d.hits, core.memory.l1d.misses),
        "ierat": (t.ierat.cache.hits, t.ierat.cache.misses),
        "derat": (t.derat.cache.hits, t.derat.cache.misses),
        "tlb": (t.tlb.data_hits, t.tlb.data_misses, t.tlb.inst_hits, t.tlb.inst_misses),
    }


class SubclassedBranchCore(CoreModel):
    branch_unit_cls = PassthroughBranchUnit


@pytest.fixture(scope="module")
def reference_snaps():
    reference = _build(ReferenceCoreModel)
    snaps = [reference.execute_window(w) for w in range(N_WINDOWS)]
    return snaps, _hardware_state(reference)


class TestSubclassForcesGenericPath:
    def test_branch_subclass_disables_fusing(self):
        core = _build(SubclassedBranchCore)
        assert not _first_runner(core)._can_fuse()

    def test_cache_subclass_disables_fusing(self):
        core = _build(CoreModel)
        geo = core.machine.l1d
        core.memory.l1d = PassthroughCache(
            n_sets=core.memory.l1d.n_sets,
            associativity=geo.associativity,
            policy=geo.policy,
        )
        assert not _first_runner(core)._can_fuse()

    def test_instance_patch_disables_fusing(self):
        core = _build(CoreModel)
        original = core.memory.load
        core.memory.load = lambda addr, region: original(addr, region)
        assert not _first_runner(core)._can_fuse()

    def test_stock_core_fuses(self):
        assert _first_runner(_build(CoreModel))._can_fuse()


class TestGenericPathBitIdentical:
    """The forced fallback reproduces the reference windows exactly."""

    def test_branch_subclass_windows(self, reference_snaps):
        ref_snaps, ref_hw = reference_snaps
        core = _build(SubclassedBranchCore)
        for w, ref in enumerate(ref_snaps):
            snap = core.execute_window(w)
            assert dict(snap.counts) == dict(ref.counts), f"window {w} diverged"
        assert _hardware_state(core) == ref_hw

    def test_cache_subclass_windows(self, reference_snaps):
        ref_snaps, ref_hw = reference_snaps
        core = _build(CoreModel)
        for attr in ("l1i", "l1d"):
            geo = getattr(core.machine, attr)
            stock = getattr(core.memory, attr)
            setattr(
                core.memory,
                attr,
                PassthroughCache(
                    n_sets=stock.n_sets,
                    associativity=geo.associativity,
                    policy=geo.policy,
                ),
            )
        for w, ref in enumerate(ref_snaps):
            snap = core.execute_window(w)
            assert dict(snap.counts) == dict(ref.counts), f"window {w} diverged"
        assert _hardware_state(core) == ref_hw
