"""Tests for the set-associative cache, including replacement-policy
semantics and hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheGeometry
from repro.cpu.cache import SetAssociativeCache


class TestBasics:
    def test_miss_then_hit_after_fill(self):
        cache = SetAssociativeCache(4, 2)
        assert not cache.lookup(10)
        cache.fill(10)
        assert cache.lookup(10)

    def test_lookup_does_not_insert(self):
        cache = SetAssociativeCache(4, 2)
        cache.lookup(10)
        assert not cache.contains(10)

    def test_contains_does_not_count(self):
        cache = SetAssociativeCache(4, 2)
        cache.fill(1)
        cache.contains(1)
        assert cache.hits == 0 and cache.misses == 0

    def test_eviction_returns_victim(self):
        cache = SetAssociativeCache(1, 2)
        cache.fill(0)
        cache.fill(1)
        victim = cache.fill(2)
        assert victim == 0
        assert not cache.contains(0)

    def test_refill_present_block_is_noop(self):
        cache = SetAssociativeCache(1, 2)
        cache.fill(0)
        assert cache.fill(0) is None
        assert cache.occupancy == 1

    def test_invalidate(self):
        cache = SetAssociativeCache(2, 2)
        cache.fill(4)
        assert cache.invalidate(4)
        assert not cache.contains(4)
        assert not cache.invalidate(4)

    def test_flush_keeps_stats(self):
        cache = SetAssociativeCache(2, 2)
        cache.lookup(1)
        cache.fill(1)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.misses == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 2)
        with pytest.raises(ValueError):
            SetAssociativeCache(2, 2, policy="random")


class TestReplacementPolicies:
    def test_lru_protects_recently_used(self):
        cache = SetAssociativeCache(1, 2, policy="lru")
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)  # refresh 0
        cache.fill(2)  # should evict 1
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_fifo_ignores_recency(self):
        """The POWER4 L1 pathology: a hot block ages out under fills
        regardless of how often it hits."""
        cache = SetAssociativeCache(1, 2, policy="fifo")
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)  # hit does NOT refresh under FIFO
        cache.fill(2)  # evicts 0, the oldest insertion
        assert not cache.contains(0)
        assert cache.contains(1)


class TestFromGeometry:
    def test_dimensions(self):
        geometry = CacheGeometry(32 * 1024, 128, 2, "fifo")
        cache = SetAssociativeCache.from_geometry(geometry)
        assert cache.n_sets == 128
        assert cache.capacity == 256
        assert cache.policy == "fifo"


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 511), min_size=1, max_size=300),
    st.sampled_from(["lru", "fifo"]),
)
def test_occupancy_never_exceeds_capacity(blocks, policy):
    cache = SetAssociativeCache(8, 2, policy=policy)
    for b in blocks:
        if not cache.lookup(b):
            cache.fill(b)
    assert cache.occupancy <= cache.capacity
    # Every set individually respects associativity.
    for ways in cache.sets:
        assert len(ways) <= cache.associativity


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
def test_fill_then_immediate_lookup_hits(blocks):
    cache = SetAssociativeCache(4, 4)
    for b in blocks:
        cache.fill(b)
        assert cache.lookup(b)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1023), min_size=1, max_size=400))
def test_hits_plus_misses_equals_lookups(blocks):
    cache = SetAssociativeCache(16, 2)
    for b in blocks:
        if not cache.lookup(b):
            cache.fill(b)
    assert cache.hits + cache.misses == len(blocks)


def test_working_set_within_capacity_converges_to_hits():
    """A working set that fits the cache stops missing once loaded."""
    cache = SetAssociativeCache(8, 2)
    blocks = list(range(16))  # exactly capacity, uniform over sets
    for b in blocks:
        cache.lookup(b)
        cache.fill(b)
    for _ in range(3):
        for b in blocks:
            assert cache.lookup(b)
