"""Tests for the cycle-accounting pipeline model."""

import random

import pytest

from repro.config import PipelineLatencies
from repro.cpu.pipeline import PipelineAccountant
from repro.cpu.sources import DataSource, InstSource
from repro.cpu.translation import TranslationResult
from repro.hpm.counters import CounterBank
from repro.hpm.events import Event


@pytest.fixture()
def accountant():
    return PipelineAccountant(PipelineLatencies(), random.Random(0))


LAT = PipelineLatencies()


class TestCharging:
    def test_base_cpi_per_instruction(self, accountant):
        accountant.add_instructions(100)
        assert accountant.cycles == pytest.approx(100 * LAT.base_cpi)

    def test_l1_hit_is_free(self, accountant):
        accountant.charge_load(None, covered=False)
        assert accountant.cycles == 0.0

    def test_covered_prefetch_is_cheap(self, accountant):
        accountant.charge_load(DataSource.MEM, covered=True)
        assert accountant.cycles == LAT.covered_prefetch

    def test_memory_load_costs_most(self, accountant):
        accountant.charge_load(DataSource.L2, covered=False)
        l2 = accountant.cycles
        accountant.charge_load(DataSource.MEM, covered=False)
        assert accountant.cycles - l2 > l2 * 10

    def test_source_ordering(self):
        """Deeper sources must cost at least as much as closer ones."""
        costs = {}
        for source in DataSource:
            a = PipelineAccountant(LAT, random.Random(0))
            a.charge_load(source, covered=False)
            costs[source] = a.cycles
        assert costs[DataSource.L2] < costs[DataSource.L3] < costs[DataSource.MEM]
        assert costs[DataSource.L3] < costs[DataSource.L35]

    def test_fetch_costs(self, accountant):
        accountant.charge_fetch(InstSource.L1)
        assert accountant.cycles == 0.0
        accountant.charge_fetch(InstSource.MEM)
        assert accountant.cycles == LAT.inst_from_mem

    def test_translation_charges(self, accountant):
        accountant.charge_data_translation(
            TranslationResult(erat_miss=False, tlb_miss=False)
        )
        assert accountant.cycles == 0.0
        accountant.charge_data_translation(
            TranslationResult(erat_miss=True, tlb_miss=True)
        )
        assert accountant.cycles == LAT.derat_miss + LAT.tlb_miss

    def test_sync_tracks_srq(self, accountant):
        accountant.charge_sync()
        bank = CounterBank()
        accountant.add_instructions(10)
        accountant.finalize(bank)
        assert bank.value(Event.PM_SYNC_SRQ_CYC) == int(round(LAT.sync_srq_cycles))


class TestFinalize:
    def _finalize(self, fill):
        bank = CounterBank()
        a = PipelineAccountant(LAT, random.Random(1))
        fill(a)
        a.finalize(bank)
        return bank.snapshot()

    def test_counts_recorded(self):
        snap = self._finalize(lambda a: a.add_instructions(1000))
        assert snap.instructions == 1000
        assert snap.cycles == pytest.approx(1000 * LAT.base_cpi, rel=0.01)

    def test_cyc_inst_cmpl_bounded_by_cycles(self):
        def fill(a):
            a.add_instructions(500)
            for _ in range(20):
                a.charge_load(DataSource.MEM, covered=False)

        snap = self._finalize(fill)
        assert snap[Event.PM_CYC_INST_CMPL] <= snap.cycles
        assert snap[Event.PM_CYC_INST_CMPL] > 0

    def test_speculation_rate_near_base_overdispatch(self):
        snap = self._finalize(lambda a: a.add_instructions(5000))
        assert 1.4 < snap.speculation_rate < 2.9

    def test_mispredicts_add_dispatches(self):
        def with_mispredicts(a):
            a.add_instructions(1000)
            for _ in range(50):
                a.charge_conditional_mispredict()

        def without(a):
            a.add_instructions(1000)

        with_m = self._finalize(with_mispredicts)[Event.PM_INST_DISP]
        base = self._finalize(without)[Event.PM_INST_DISP]
        assert with_m > base

    def test_mispredict_raises_cpi(self):
        def fill(a):
            a.add_instructions(100)
            a.charge_conditional_mispredict()
            a.charge_target_mispredict()

        snap = self._finalize(fill)
        expected = 100 * LAT.base_cpi + LAT.branch_mispredict + LAT.target_mispredict
        assert snap.cycles == pytest.approx(expected, abs=1.0)
