"""Tests for the tprof/vmstat/verbosegc tool equivalents."""

import pytest

from repro.jvm.jit import JitCompiler
from repro.tools.tprof import TprofReport
from repro.tools.verbosegc import VerboseGcLog
from repro.tools.vmstat import VmstatReport
from repro.util.rng import RngFactory


class TestVerboseGc:
    def test_summary_matches_events(self, quick_run, quick_config):
        log = VerboseGcLog(quick_run.gc_events, quick_config.workload.duration_s)
        summary = log.summary()
        assert summary.collections == len(quick_run.gc_events)
        assert 20 < summary.mean_period_s < 35
        assert 200 < summary.mean_pause_ms < 500
        assert summary.percent_of_runtime < 0.025
        assert summary.mean_mark_fraction > 0.7
        assert summary.compactions == 0

    def test_dark_matter_rate_near_paper(self, quick_run, quick_config):
        log = VerboseGcLog(quick_run.gc_events, quick_config.workload.duration_s)
        assert log.summary().dark_matter_mb_per_min == pytest.approx(1.0, abs=0.6)

    def test_render_lines(self, quick_run, quick_config):
        log = VerboseGcLog(quick_run.gc_events, quick_config.workload.duration_s)
        lines = log.render_lines(limit=3)
        assert len(lines) == 3
        assert "pause=" in lines[0] and "mark=" in lines[0]

    def test_empty_log(self):
        summary = VerboseGcLog([], 60.0).summary()
        assert summary.collections == 0
        assert summary.mean_period_s is None

    def test_table_lines(self, quick_run, quick_config):
        log = VerboseGcLog(quick_run.gc_events, quick_config.workload.duration_s)
        text = "\n".join(log.summary().table_lines())
        assert "Time Between GC" in text
        assert "Average Percent of Runtime" in text


class TestVmstat:
    @pytest.fixture(scope="class")
    def vmstat(self, quick_run):
        return VmstatReport(quick_run, interval_s=5.0)

    def test_rows_cover_run(self, vmstat, quick_config):
        expected = int(quick_config.workload.duration_s / 5.0)
        assert len(vmstat.rows) == pytest.approx(expected, abs=1)

    def test_percentages_sum_sane(self, vmstat):
        for row in vmstat.rows:
            total = row.user_pct + row.system_pct + row.idle_pct + row.iowait_pct
            assert total == pytest.approx(100.0, abs=1.5)

    def test_steady_user_system_split(self, vmstat):
        assert vmstat.mean_user_pct() > 60.0
        assert 10.0 < vmstat.mean_system_pct() < 25.0

    def test_ram_disk_has_no_iowait(self, vmstat):
        assert vmstat.mean_iowait_pct() < 2.0

    def test_render(self, vmstat):
        lines = vmstat.render_lines(limit=5)
        assert "us" in lines[0] and "wa" in lines[0]
        assert len(lines) == 6


class TestTprof:
    @pytest.fixture(scope="class")
    def tprof(self, quick_run, quick_registry, quick_config):
        jit = JitCompiler(
            quick_registry, RngFactory(quick_config.seed).stream("jit")
        )
        return TprofReport(quick_run, quick_registry, jit=jit)

    def test_component_shares_sum_to_one(self, tprof):
        assert sum(tprof.component_shares().values()) == pytest.approx(1.0)

    def test_was_dominates(self, tprof):
        assert tprof.was_share() > 0.45

    def test_jas2004_share_small(self, tprof):
        assert 0.005 < tprof.jas2004_share() < 0.05

    def test_hottest_method_is_char_converter(self, tprof):
        assert "CharToByte" in tprof.hottest_method().name
        assert tprof.hottest_method().percent_jited < 5.0

    def test_method_lines_ordered(self, tprof):
        lines = tprof.method_lines(top=20)
        percents = [l.percent_jited for l in lines]
        assert percents == sorted(percents, reverse=True)

    def test_methods_for_jited_share(self, tprof, quick_config):
        n = tprof.methods_for_jited_share(0.5)
        warm = quick_config.jvm.warm_methods
        assert warm * 0.5 <= n <= warm * 2

    def test_render(self, tprof):
        text = "\n".join(tprof.render_lines(top=5))
        assert "tprof" in text
        assert "was_jited" in text


class TestVmstatWithHardDisks:
    def test_iowait_visible_under_disk_pressure(self):
        """A disk-bound run shows non-zero I/O wait in vmstat — the
        signal the paper tuned away."""
        import dataclasses

        from repro.config import DiskConfig
        from repro.workload.presets import jas2004
        from repro.workload.sut import SystemUnderTest

        cfg = jas2004(duration_s=120.0, disk=DiskConfig.hard_disks(2), seed=77)
        cfg = dataclasses.replace(
            cfg,
            jvm=dataclasses.replace(cfg.jvm, n_jited_methods=300, warm_methods=20),
        )
        result = SystemUnderTest(cfg).run()
        report = VmstatReport(result, interval_s=5.0)
        assert report.mean_iowait_pct() > 1.0
