"""Host-cost correlation (Figure 10 inward) and the series adapter."""

from __future__ import annotations

import pytest

from repro.core.correlation import correlate_against
from repro.perf.selfcorr import HostCostReport, host_cost_correlation


class TestCorrelateAgainst:
    def test_perfectly_correlated_series(self):
        target = [1.0, 2.0, 3.0, 4.0]
        out = correlate_against(target, {"double": [2.0, 4.0, 6.0, 8.0]})
        assert len(out) == 1
        assert out[0].name == "double"
        assert out[0].r == pytest.approx(1.0)
        assert out[0].n_samples == 4

    def test_anticorrelated_series(self):
        out = correlate_against(
            [1.0, 2.0, 3.0], {"neg": [3.0, 2.0, 1.0]}
        )
        assert out[0].r == pytest.approx(-1.0)

    def test_sorted_by_r_then_name(self):
        target = [1.0, 2.0, 3.0, 4.0]
        out = correlate_against(
            target,
            {
                "b_up": [1.0, 2.0, 3.0, 4.0],
                "a_up": [2.0, 4.0, 6.0, 8.0],
                "down": [4.0, 3.0, 2.0, 1.0],
            },
        )
        # r descending; ties (both r=1) break on the name.
        assert [c.name for c in out] == ["a_up", "b_up", "down"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            correlate_against([1.0, 2.0], {"short": [1.0]})


class TestHostCostCorrelation:
    @pytest.fixture(scope="class")
    def report(self) -> HostCostReport:
        return host_cost_correlation(windows=8)

    def test_requires_three_windows(self):
        with pytest.raises(ValueError, match="at least 3"):
            host_cost_correlation(windows=2)

    def test_report_shape(self, report):
        assert report.windows == 8
        assert report.total_host_s > 0.0
        assert report.correlations, "no event had variance across windows"
        for c in report.correlations:
            assert -1.0 <= c.r <= 1.0 + 1e-9
            assert c.n_samples == 8

    def test_zero_variance_events_dropped(self, report):
        # Each surviving column had variance, hence a defined r.
        names = [c.name for c in report.correlations]
        assert len(names) == len(set(names))

    def test_strongest_orders_by_magnitude(self, report):
        strongest = report.strongest(5)
        mags = [abs(c.r) for c in strongest]
        assert mags == sorted(mags, reverse=True)

    def test_r_of_lookup(self, report):
        first = report.correlations[0]
        assert report.r_of(first.name) == first.r
        with pytest.raises(KeyError):
            report.r_of("no_such_event")

    def test_render_mentions_windows_and_bars(self, report):
        text = "\n".join(report.render_lines())
        assert "8 windows" in text
        assert "r(event count, host seconds)" in text
