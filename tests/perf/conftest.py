"""Shared synthetic fixtures for the performance-observatory tests.

The profiler/flat-profile tests run against a hand-built
:class:`~repro.perf.sampler.SampleLog` so every assertion is exact —
no real sampling jitter involved.  The synthetic log models a small
call tree::

    main -> simulate -> run_until      (6 samples, the hot leaf)
    main -> simulate                   (2 samples)
    main -> report                     (2 samples)

so ``run_until`` owns 60% of self time and 90/10-style concentration
questions have known answers.
"""

from __future__ import annotations

import pytest

from repro.perf.sampler import FrameKey, SampleLog, StackSample

MAIN = FrameKey(func="main", file="/repo/src/app.py", line=10)
SIMULATE = FrameKey(func="simulate", file="/repo/src/sim.py", line=40)
RUN_UNTIL = FrameKey(func="run_until", file="/repo/src/stream.py", line=438)
REPORT = FrameKey(func="report", file="/repo/src/report.py", line=5)

HOT_STACK = (MAIN, SIMULATE, RUN_UNTIL)
MID_STACK = (MAIN, SIMULATE)
COLD_STACK = (MAIN, REPORT)


def make_sample_log(order=None) -> SampleLog:
    """The synthetic log; ``order`` permutes sample insertion order."""
    stacks = [HOT_STACK] * 6 + [MID_STACK] * 2 + [COLD_STACK] * 2
    if order is not None:
        stacks = [stacks[i] for i in order]
    samples = [
        StackSample(t=1.0 + 0.01 * i, frames=frames)
        for i, frames in enumerate(stacks)
    ]
    return SampleLog(
        interval_s=0.01, started_s=1.0, stopped_s=1.2, samples=samples
    )


@pytest.fixture
def sample_log() -> SampleLog:
    return make_sample_log()


@pytest.fixture(autouse=True)
def _clean_git_describe(monkeypatch):
    """Stamp bench envelopes with a clean synthetic revision.

    The observatory tests must not depend on the developer's working
    tree state: a dirty checkout would stamp ``-dirty`` describes,
    and the gate (correctly) refuses to promote those to baseline —
    which would make these tests fail locally mid-development.  Tests
    exercising the dirty-baseline hygiene craft their records
    explicitly.
    """
    monkeypatch.setattr("repro.benchio.git_describe", lambda: "testrev")
