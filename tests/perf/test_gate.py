"""The statistical regression gate on synthetic histories.

Every scenario the gate policy distinguishes gets a hand-built pair
of records: unchanged, clearly regressed, improved, warn-band,
single-shot baseline, changed size parameters, and cross-host.
"""

from __future__ import annotations

from repro.benchio import BENCH_SCHEMA
from repro.obs.manifest import host_fingerprint
from repro.perf.gate import (
    IMPROVED,
    INFO,
    OK,
    REGRESSED,
    WARN,
    compare_records,
    diff_lines,
    evaluate_gate,
)

OTHER_HOST = {
    "python": "3.9.0",
    "implementation": "CPython",
    "platform": "SomewhereElse",
    "machine": "riscv128",
}


def record(kernels, host=None, tag="rev"):
    """A schema-2 history record around ``{name: reps_s list}``."""
    doc = {
        "schema": BENCH_SCHEMA,
        "kind": "perf_suite",
        "host": host or host_fingerprint(),
        "git_describe": tag,
        "recorded_at": None,
        "repetitions": 5,
        "spread": {},
    }
    for name, reps in kernels.items():
        if isinstance(reps, dict):
            doc[name] = reps
        else:
            doc[name] = {
                "reps_s": list(reps),
                "best_s": min(reps),
                "median_s": sorted(reps)[len(reps) // 2],
                "spread": (max(reps) - min(reps)) / min(reps),
                "windows": 4,
            }
    return doc


# Tight, well-separated repetition samples: the baseline cluster and a
# 2x / 1.2x / 0.8x shifted copy of it.
BASE = [0.100, 0.101, 0.102, 0.103, 0.104]
DOUBLED = [0.200, 0.202, 0.204, 0.206, 0.208]
WARNBAND = [0.120, 0.121, 0.122, 0.123, 0.124]
FASTER = [0.080, 0.081, 0.082, 0.083, 0.084]


def verdict_of(report, kernel):
    return {v.kernel: v for v in report.verdicts}[kernel]


class TestCompareRecords:
    def test_unchanged_is_ok(self):
        report = compare_records(
            record({"k": BASE}), record({"k": [t + 1e-4 for t in BASE]})
        )
        assert verdict_of(report, "k").verdict == OK
        assert report.passed

    def test_significant_doubling_regresses(self):
        report = compare_records(record({"k": BASE}), record({"k": DOUBLED}))
        v = verdict_of(report, "k")
        assert v.verdict == REGRESSED
        assert v.ratio >= 1.9
        assert v.p_value < 0.05
        assert not report.passed

    def test_warn_band_slowdown_warns_but_passes(self):
        report = compare_records(record({"k": BASE}), record({"k": WARNBAND}))
        v = verdict_of(report, "k")
        assert v.verdict == WARN
        assert report.passed
        assert v in report.warnings

    def test_improvement_reported(self):
        report = compare_records(record({"k": BASE}), record({"k": FASTER}))
        assert verdict_of(report, "k").verdict == IMPROVED
        assert report.passed

    def test_large_ratio_without_significance_cannot_fail(self):
        # Single-shot baseline: a 2x ratio but no distribution to test.
        base = record({"k": {"reps_s": [0.1], "best_s": 0.1, "windows": 4}})
        new = record({"k": {"reps_s": [0.2], "best_s": 0.2, "windows": 4}})
        v = verdict_of(compare_records(base, new), "k")
        assert v.verdict == WARN
        assert v.p_value is None
        assert "single-shot" in v.note

    def test_changed_size_parameters_not_comparable(self):
        base = record({"k": {"reps_s": BASE, "best_s": min(BASE), "windows": 4}})
        new = record(
            {"k": {"reps_s": DOUBLED, "best_s": min(DOUBLED), "windows": 12}}
        )
        v = verdict_of(compare_records(base, new), "k")
        assert v.verdict == INFO
        assert "not comparable" in v.note

    def test_new_and_vanished_kernels_are_info(self):
        report = compare_records(
            record({"old": BASE}), record({"fresh": BASE})
        )
        assert verdict_of(report, "fresh").verdict == INFO
        assert verdict_of(report, "old").verdict == INFO
        assert report.passed

    def test_cross_host_caps_at_warn(self):
        report = compare_records(
            record({"k": BASE}, host=OTHER_HOST),
            record({"k": DOUBLED}),
            cross_host=True,
        )
        v = verdict_of(report, "k")
        assert v.verdict == WARN
        assert "cross-host" in v.note
        assert report.passed

    def test_json_dict_carries_every_verdict(self):
        report = compare_records(
            record({"a": BASE, "b": BASE}), record({"a": DOUBLED, "b": FASTER})
        )
        doc = report.to_json_dict()
        assert doc["passed"] is False
        assert {v["kernel"] for v in doc["verdicts"]} == {"a", "b"}


class TestEvaluateGate:
    def test_short_history_skips_and_passes(self):
        report = evaluate_gate([record({"k": BASE})])
        assert report.passed
        assert "fewer than two" in report.skipped_reason
        text = "\n".join(report.render_lines())
        assert "SKIPPED" in text and "PASS" in text

    def test_latest_judged_against_same_host_baseline(self):
        records = [
            record({"k": BASE}, tag="old"),
            record({"k": DOUBLED}, host=OTHER_HOST, tag="ci"),
            record({"k": [t + 1e-4 for t in BASE]}, tag="new"),
        ]
        report = evaluate_gate(records)
        # The CI record from another host is skipped over: new vs old.
        assert report.passed
        assert "old" in report.baseline_id

    def test_regression_fails_the_gate(self):
        report = evaluate_gate([record({"k": BASE}), record({"k": DOUBLED})])
        assert not report.passed
        assert "FAIL" in "\n".join(report.render_lines())

    def test_cross_host_fallback_is_warn_only(self):
        records = [
            record({"k": BASE}, host=OTHER_HOST, tag="ci"),
            record({"k": DOUBLED}, tag="mine"),
        ]
        report = evaluate_gate(records)
        assert report.passed
        assert verdict_of(report, "k").verdict == WARN

    def test_thresholds_are_tunable(self):
        records = [record({"k": BASE}), record({"k": WARNBAND})]
        strict = evaluate_gate(records, fail_ratio=1.1)
        assert not strict.passed
        lax = evaluate_gate(records, warn_ratio=1.3)
        assert verdict_of(lax, "k").verdict == OK


class TestDiffLines:
    def test_table_lists_kernels_and_ratio(self):
        lines = diff_lines(
            record({"k": BASE}, tag="revA"), record({"k": DOUBLED}, tag="revB")
        )
        text = "\n".join(lines)
        assert "revA" in text and "revB" in text
        assert "k" in text
        assert "2.00x" in text

    def test_one_sided_kernels_flagged(self):
        text = "\n".join(
            diff_lines(record({"only_a": BASE}), record({"only_b": BASE}))
        )
        assert "A only" in text
        assert "B only" in text


class TestDirtyBaselineHygiene:
    """`-dirty` envelopes are flagged and never promoted to baseline."""

    def test_dirty_baseline_is_skipped_for_older_clean_one(self):
        records = [
            record({"k": BASE}, tag="v1"),
            record({"k": DOUBLED}, tag="v1-2-gabc-dirty"),
            record({"k": [t + 1e-4 for t in BASE]}, tag="v2"),
        ]
        report = evaluate_gate(records)
        # Judged against the clean v1 record, not the dirty 2x one:
        # an honest rerun passes instead of "improving" vs bad data.
        assert verdict_of(report, "k").verdict == OK
        assert "v1 " in report.baseline_id
        assert any("dirty" in note for note in report.notes)

    def test_dirty_latest_is_judged_but_flagged(self):
        records = [
            record({"k": BASE}, tag="v1"),
            record({"k": DOUBLED}, tag="v1-2-gabc-dirty"),
        ]
        report = evaluate_gate(records)
        assert verdict_of(report, "k").verdict == REGRESSED
        assert any(
            "latest record was measured in a dirty working tree" in note
            for note in report.notes
        )

    def test_all_dirty_baselines_skip_the_gate(self):
        records = [
            record({"k": BASE}, tag="v1-dirty"),
            record({"k": DOUBLED}, tag="v2-dirty"),
            record({"k": BASE}, tag="v3"),
        ]
        report = evaluate_gate(records)
        assert report.skipped_reason
        assert "dirty" in report.skipped_reason
        assert report.passed
        assert report.to_json_dict()["notes"] == report.notes

    def test_clean_cross_host_beats_dirty_same_host(self):
        records = [
            record({"k": BASE}, host=OTHER_HOST, tag="ci"),
            record({"k": BASE}, tag="mine-dirty"),
            record({"k": DOUBLED}, tag="mine"),
        ]
        report = evaluate_gate(records)
        # Cross-host comparisons never fail, but the dirty same-host
        # record must not have been used either.
        v = verdict_of(report, "k")
        assert v.verdict == WARN
        assert "cross-host" in v.note
