"""Flat profile, coverage curve, and flamegraph export — all exact.

Everything runs against the synthetic log in ``conftest.py`` (6/2/2
samples over three stacks), so the expected self/cum counts, the
coverage curve, and the rendered text are known in closed form — and
determinism can be asserted by permuting sample insertion order.
"""

from __future__ import annotations

import pytest

from repro.perf.flatprofile import FlatProfile, write_collapsed_stacks
from repro.perf.sampler import FrameKey, SampleLog, StackSample
from tests.perf.conftest import (
    HOT_STACK,
    MAIN,
    REPORT,
    RUN_UNTIL,
    SIMULATE,
    make_sample_log,
)


class TestFromLog:
    def test_self_and_cumulative_counts(self, sample_log):
        flat = FlatProfile.from_log(sample_log)
        by_frame = {e.frame: e for e in flat.entries}
        assert flat.total_samples == 10
        # Leaves own self ticks; everything on-stack owns cum ticks.
        assert by_frame[RUN_UNTIL].self_samples == 6
        assert by_frame[RUN_UNTIL].cum_samples == 6
        assert by_frame[SIMULATE].self_samples == 2
        assert by_frame[SIMULATE].cum_samples == 8
        assert by_frame[REPORT].self_samples == 2
        assert by_frame[MAIN].self_samples == 0
        assert by_frame[MAIN].cum_samples == 10

    def test_hottest_self_first(self, sample_log):
        flat = FlatProfile.from_log(sample_log)
        assert flat.entries[0].frame == RUN_UNTIL
        selfs = [e.self_samples for e in flat.entries]
        assert selfs == sorted(selfs, reverse=True)

    def test_recursive_frame_gets_one_cum_tick_per_sample(self):
        rec = FrameKey(func="recurse", file="r.py", line=1)
        log = SampleLog(
            interval_s=0.01,
            started_s=0.0,
            stopped_s=1.0,
            samples=[StackSample(t=0.1, frames=(rec, rec, rec))],
        )
        flat = FlatProfile.from_log(log)
        assert len(flat.entries) == 1
        assert flat.entries[0].cum_samples == 1
        assert flat.entries[0].self_samples == 1

    def test_empty_log(self):
        log = SampleLog(interval_s=0.01, started_s=0.0, stopped_s=1.0)
        flat = FlatProfile.from_log(log)
        assert flat.entries == []
        with pytest.raises(ValueError, match="no self samples"):
            flat.analysis()


class TestDeterminism:
    def test_rendering_invariant_under_sample_order(self):
        """Same sample multiset, any arrival order -> identical text."""
        reference = FlatProfile.from_log(make_sample_log()).render_lines()
        permuted = make_sample_log(order=[9, 3, 7, 0, 5, 1, 8, 2, 6, 4])
        assert FlatProfile.from_log(permuted).render_lines() == reference

    def test_json_dict_invariant_under_sample_order(self):
        reference = FlatProfile.from_log(make_sample_log()).to_json_dict()
        permuted = make_sample_log(order=list(reversed(range(10))))
        assert FlatProfile.from_log(permuted).to_json_dict() == reference

    def test_rendering_repeatable(self, sample_log):
        flat = FlatProfile.from_log(sample_log)
        assert flat.render_lines() == flat.render_lines()


class TestShapeAnalysis:
    def test_self_shares(self, sample_log):
        flat = FlatProfile.from_log(sample_log)
        assert flat.self_shares() == [0.6, 0.2, 0.2]

    def test_coverage_curve(self, sample_log):
        flat = FlatProfile.from_log(sample_log)
        curve = flat.coverage_curve()
        assert [rank for rank, _ in curve] == [1, 2, 3]
        shares = [share for _, share in curve]
        assert shares[0] == pytest.approx(0.6)
        assert shares[-1] == pytest.approx(1.0)
        assert shares == sorted(shares)  # monotone non-decreasing

    def test_verdict_lines_appended(self, sample_log):
        text = "\n".join(FlatProfile.from_log(sample_log).render_lines())
        # The §4.1.2 machinery renders its verdict under the table.
        assert "run_until" in text
        assert "%" in text
        analysis = FlatProfile.from_log(sample_log).analysis()
        for line in analysis.verdict_lines():
            assert line in text


class TestCollapsedStacks:
    def test_folded_format(self, sample_log):
        lines = FlatProfile.collapsed_stacks(sample_log)
        assert lines[0] == (
            f"{MAIN.label()};{SIMULATE.label()};{RUN_UNTIL.label()} 6"
        )
        assert len(lines) == 3
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert ";" in stack or stack  # root-first path

    def test_sorted_by_count_then_name(self, sample_log):
        lines = FlatProfile.collapsed_stacks(sample_log)
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)
        # The two 2-sample stacks tie on count; name breaks the tie.
        tied = [line for line in lines if line.endswith(" 2")]
        assert tied == sorted(tied)

    def test_write_collapsed_stacks(self, tmp_path, sample_log):
        path = write_collapsed_stacks(tmp_path / "flame.folded", sample_log)
        content = path.read_text()
        assert content.endswith("\n")
        assert len(content.splitlines()) == 3
        assert str(HOT_STACK[0].label()) in content

    def test_empty_log_writes_empty_file(self, tmp_path):
        log = SampleLog(interval_s=0.01, started_s=0.0, stopped_s=1.0)
        path = write_collapsed_stacks(tmp_path / "empty.folded", log)
        assert path.read_text() == ""
