"""The observatory CLI surface: bench / perf-diff / perf-gate.

Each test drives ``repro.cli.main`` with an isolated history file, so
the commands are exercised exactly as CI uses them — including the
exit codes the gate contract promises.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


#: The whole quick-tier suite, as `repro bench --quick` runs it in CI.
ALL_KERNELS = {
    "cache_kernel",
    "counter_kernel",
    "window_execution",
    "batch_windows_vector",
    "batch_windows_fused",
    "batch_windows_reference",
    "reproduce_all_packed",
    "reproduce_all_fused",
}


def bench(history, *extra, kernels="counter_kernel,window_execution"):
    """Drive `repro bench`; plumbing tests use a fast kernel subset."""
    args = [
        "bench",
        "--quick",
        "--history",
        str(history),
        "--reps",
        "5",
    ]
    if kernels is not None:
        args += ["--kernels", kernels]
    return main([*args, *extra])


class TestBench:
    def test_records_trajectory_points(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        assert bench(history) == 0
        assert bench(history) == 0
        out = capsys.readouterr().out
        assert "trajectory point 1" in out
        assert "trajectory point 2" in out
        assert len(history.read_text().splitlines()) == 2

    def test_no_record_leaves_history_alone(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        assert bench(history, "--no-record") == 0
        assert not history.exists()
        assert "Kernel suite (best of 5)" in capsys.readouterr().out

    def test_standalone_envelope(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        envelope = tmp_path / "BENCH_suite.json"
        assert bench(history, "--json", str(envelope), kernels=None) == 0
        doc = json.loads(envelope.read_text())
        assert doc["schema"] == 2
        assert doc["kind"] == "perf_suite"
        assert doc["repetitions"] == 5
        assert set(doc["spread"]) == ALL_KERNELS

    def test_unknown_kernel_selection_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown kernels"):
            bench(tmp_path / "h.jsonl", kernels="nonesuch")

    def test_rep_floor_propagates(self, tmp_path):
        with pytest.raises(ValueError, match=">= 5"):
            bench(tmp_path / "h.jsonl", "--reps", "2")


class TestPerfGate:
    def test_empty_history_skips_and_passes(self, tmp_path, capsys):
        code = main(
            ["perf-gate", "--history", str(tmp_path / "missing.jsonl")]
        )
        assert code == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_honest_rerun_passes_with_json_report(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        bench(history)
        bench(history)
        gate_json = tmp_path / "gate.json"
        code = main(
            [
                "perf-gate",
                "--history",
                str(history),
                "--json",
                str(gate_json),
            ]
        )
        assert code == 0
        assert "verdict: PASS" in capsys.readouterr().out
        doc = json.loads(gate_json.read_text())
        assert doc["passed"] is True
        assert {v["kernel"] for v in doc["verdicts"]} == {
            "counter_kernel",
            "window_execution",
        }

    def test_regressed_history_exits_one(self, tmp_path, capsys):
        """A synthetic 2x-regressed history: the gate must exit 1."""
        from repro.obs.manifest import host_fingerprint

        def line(reps):
            return json.dumps(
                {
                    "schema": 2,
                    "kind": "perf_suite",
                    "host": host_fingerprint(),
                    "git_describe": "synthetic",
                    "recorded_at": None,
                    "repetitions": 5,
                    "spread": {},
                    "k": {"reps_s": reps, "best_s": min(reps), "windows": 4},
                }
            )

        base = [0.100, 0.101, 0.102, 0.103, 0.104]
        history = tmp_path / "hist.jsonl"
        history.write_text(
            line(base) + "\n" + line([2 * t for t in base]) + "\n"
        )
        code = main(["perf-gate", "--history", str(history)])
        assert code == 1
        assert "verdict: FAIL" in capsys.readouterr().out


class TestPerfDiff:
    def test_needs_two_records(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        assert main(["perf-diff", "--history", str(history)]) == 2
        bench(history)
        assert main(["perf-diff", "--history", str(history)]) == 2
        assert "need two" in capsys.readouterr().out

    def test_diffs_latest_pair_and_writes_report(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        bench(history)
        bench(history)
        report = tmp_path / "diff.txt"
        code = main(
            [
                "perf-diff",
                "--history",
                str(history),
                "--output",
                str(report),
            ]
        )
        assert code == 0
        text = report.read_text()
        assert "Perf diff" in text
        assert "window_execution" in text
        assert "Perf diff" in capsys.readouterr().out

    def test_out_of_range_index(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        bench(history)
        bench(history)
        code = main(
            ["perf-diff", "--history", str(history), "--a", "5", "--b", "1"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().out
