"""End-to-end self-characterization run (sampling a real study)."""

from __future__ import annotations

import pytest

from repro.perf.flatprofile import FlatProfile
from repro.perf.sampler import self_profile

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def profile():
    # A fine interval so even a fast run collects a usable sample set.
    return self_profile(windows=8, interval_s=0.001)


class TestSelfProfile:
    def test_samples_were_captured(self, profile):
        assert len(profile.log) >= 10
        assert profile.flat.total_samples == len(profile.log)

    def test_hot_frames_are_in_the_simulator(self, profile):
        files = {e.frame.file for e in profile.flat.entries[:5]}
        assert any("repro" in f for f in files)

    def test_span_attribution_covers_most_samples(self, profile):
        # The sampled region runs under observe(): nearly every sample
        # should land inside some wall span (cpu/hpm/...).
        attributed = sum(profile.spans.by_category.values())
        assert attributed + profile.spans.unattributed == len(profile.log)
        assert attributed >= 0.5 * len(profile.log)

    def test_render_combines_flat_and_spans(self, profile):
        text = "\n".join(profile.render_lines(top_n=5))
        assert "Self flat profile" in text
        assert "Host time by obs span category" in text

    def test_flamegraph_export_nonempty(self, tmp_path, profile):
        lines = FlatProfile.collapsed_stacks(profile.log)
        assert lines
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == sum(1 for s in profile.log.samples if s.frames)
