"""The append-only trajectory file: append, read, pair selection."""

from __future__ import annotations

import json

import pytest

from repro.benchio import BENCH_SCHEMA
from repro.obs.manifest import host_fingerprint
from repro.perf.history import (
    append_record,
    describe_record,
    is_dirty_record,
    latest_pair,
    read_history,
)

RESULTS = {"kernel_a": {"best_s": 0.01, "reps_s": [0.01, 0.011]}}


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        written = append_record(
            path, RESULTS, "perf_suite", repetitions=5, spread={"kernel_a": 0.1}
        )
        records = read_history(path)
        assert len(records) == 1
        assert records[0] == written
        assert records[0]["schema"] == BENCH_SCHEMA
        assert records[0]["kernel_a"] == RESULTS["kernel_a"]
        assert records[0]["repetitions"] == 5

    def test_append_only(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_record(path, {"a": 1}, "k", repetitions=1)
        first_line = path.read_text()
        append_record(path, {"a": 2}, "k", repetitions=1)
        # The first line survives byte-for-byte; one line per record.
        assert path.read_text().startswith(first_line)
        assert len(path.read_text().splitlines()) == 2

    def test_missing_file_is_empty_history(self, tmp_path):
        assert read_history(tmp_path / "nope.jsonl") == []

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_record(path, {"a": 1}, "k", repetitions=1)
        with path.open("a") as fh:
            fh.write("\n\n")
        append_record(path, {"a": 2}, "k", repetitions=1)
        assert len(read_history(path)) == 2

    def test_corrupt_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_record(path, {"a": 1}, "k", repetitions=1)
        with path.open("a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ValueError, match=r"hist\.jsonl:2"):
            read_history(path)

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_record(path, {"a": 1}, "perf_suite", repetitions=1)
        append_record(path, {"b": 2}, "core_model_bench", repetitions=1)
        append_record(path, {"c": 3}, "perf_suite", repetitions=1)
        assert len(read_history(path)) == 3
        suite = read_history(path, kind="perf_suite")
        assert [r.get("a", r.get("c")) for r in suite] == [1, 3]

    def test_schema_1_lines_migrated(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        old = {"schema": 1, "kind": "k", "host": host_fingerprint(), "a": 1}
        path.write_text(json.dumps(old) + "\n")
        records = read_history(path)
        assert records[0]["schema"] == BENCH_SCHEMA
        assert records[0]["git_describe"] == "unknown"
        assert records[0]["repetitions"] == 1


def _record(host=None, tag="r"):
    return {
        "schema": BENCH_SCHEMA,
        "kind": "perf_suite",
        "host": host or host_fingerprint(),
        "git_describe": tag,
        "recorded_at": None,
        "repetitions": 5,
        "spread": {},
    }


OTHER_HOST = {
    "python": "3.9.0",
    "implementation": "CPython",
    "platform": "SomewhereElse",
    "machine": "riscv128",
}


class TestLatestPair:
    def test_needs_two_records(self):
        assert latest_pair([]) is None
        assert latest_pair([_record()]) is None

    def test_most_recent_same_host_predecessor(self):
        records = [_record(tag="a"), _record(tag="b"), _record(tag="c")]
        baseline, latest = latest_pair(records)
        assert baseline["git_describe"] == "b"
        assert latest["git_describe"] == "c"

    def test_skips_foreign_host_records(self):
        records = [
            _record(tag="mine-old"),
            _record(host=OTHER_HOST, tag="ci"),
            _record(tag="mine-new"),
        ]
        baseline, latest = latest_pair(records)
        assert baseline["git_describe"] == "mine-old"
        assert latest["git_describe"] == "mine-new"

    def test_no_same_host_predecessor(self):
        records = [_record(host=OTHER_HOST, tag="ci"), _record(tag="mine")]
        assert latest_pair(records) is None
        baseline, latest = latest_pair(records, same_host=False)
        assert baseline["git_describe"] == "ci"
        assert latest["git_describe"] == "mine"


class TestDescribeRecord:
    def test_mentions_revision_and_platform(self):
        record = _record(tag="v1.0-3-gabc")
        text = describe_record(record)
        assert "v1.0-3-gabc" in text
        assert record["host"]["machine"] in text

    def test_tolerates_missing_fields(self):
        assert "unknown" in describe_record({"git_describe": "unknown"})


class TestDirtyRecords:
    def test_is_dirty_record(self):
        assert is_dirty_record(_record(tag="v1-2-gabc-dirty"))
        assert not is_dirty_record(_record(tag="v1-2-gabc"))
        assert not is_dirty_record({"kind": "perf_suite"})

    def test_skip_dirty_passes_over_dirty_baselines(self):
        records = [
            _record(tag="clean"),
            _record(tag="wip-dirty"),
            _record(tag="latest"),
        ]
        baseline, latest = latest_pair(records, skip_dirty=True)
        assert baseline["git_describe"] == "clean"
        assert latest["git_describe"] == "latest"

    def test_skip_dirty_may_leave_no_pair(self):
        records = [_record(tag="wip-dirty"), _record(tag="latest")]
        assert latest_pair(records, skip_dirty=True) is None
        assert latest_pair(records) is not None

    def test_dirty_latest_still_judged(self):
        records = [_record(tag="clean"), _record(tag="now-dirty")]
        baseline, latest = latest_pair(records, skip_dirty=True)
        assert latest["git_describe"] == "now-dirty"
