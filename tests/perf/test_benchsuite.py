"""The best-of-N suite, and the gate acceptance scenario end to end.

The acceptance test is the one the observatory exists for: inject a
2x slowdown into ``SliceRunner.run_until`` (the hot kernel), record a
trajectory point, and the gate must FAIL — while an unmodified rerun
of identical work must PASS.
"""

from __future__ import annotations

import time

import pytest

from repro.cpu.stream import SliceRunner
from repro.perf.benchsuite import (
    MIN_REPETITIONS,
    SUITE_KIND,
    best_of,
    render_suite_lines,
    run_suite,
    suite_spread,
)
from repro.perf.gate import REGRESSED, evaluate_gate
from repro.perf.history import append_record, read_history


class TestBestOf:
    def test_measures_every_repetition(self):
        calls = []

        def setup():
            calls.append("setup")
            return object()

        result = best_of(setup, lambda state: None, reps=5)
        assert calls == ["setup"] * 5
        assert len(result["reps_s"]) == 5
        assert result["best_s"] == min(result["reps_s"])
        assert result["best_s"] <= result["median_s"]
        assert result["spread"] >= 0.0

    def test_setup_outside_timed_region(self):
        def slow_setup():
            time.sleep(0.02)
            return None

        result = best_of(slow_setup, lambda state: None, reps=5)
        # 20ms of setup per rep must not leak into the timings.
        assert result["best_s"] < 0.01

    def test_rejects_zero_reps(self):
        with pytest.raises(ValueError, match="at least one"):
            best_of(lambda: None, lambda s: None, reps=0)


class TestRunSuite:
    def test_quick_suite_shape(self):
        results = run_suite(quick=True)
        assert set(results) == {
            "cache_kernel",
            "counter_kernel",
            "window_execution",
            "batch_windows_vector",
            "batch_windows_fused",
            "batch_windows_reference",
            "reproduce_all_packed",
            "reproduce_all_fused",
        }
        for entry in results.values():
            assert len(entry["reps_s"]) == MIN_REPETITIONS
            assert entry["best_s"] > 0
        # Size parameters travel with the measurement.
        assert results["window_execution"]["windows"] == 4
        assert results["cache_kernel"]["accesses"] == 50_000
        # The batch trio measures identical work under all three engines.
        assert (
            results["batch_windows_vector"]["windows"]
            == results["batch_windows_fused"]["windows"]
            == results["batch_windows_reference"]["windows"]
            == 160
        )
        # The sweep pair measures the same catalog subset and scale.
        assert (
            results["reproduce_all_packed"]["modules"]
            == results["reproduce_all_fused"]["modules"]
            == ["fig05_cpi", "fig07_tlb"]
        )
        assert (
            results["reproduce_all_packed"]["duration_s"]
            == results["reproduce_all_fused"]["duration_s"]
        )

    def test_repetition_floor_enforced(self):
        with pytest.raises(ValueError, match=">= 5"):
            run_suite(quick=True, reps=3)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernels"):
            run_suite(quick=True, kernels=["nonesuch"])

    def test_kernel_selection(self):
        results = run_suite(quick=True, kernels=["counter_kernel"])
        assert list(results) == ["counter_kernel"]

    def test_spread_and_rendering(self):
        results = run_suite(quick=True, kernels=["counter_kernel"])
        spread = suite_spread(results)
        assert set(spread) == {"counter_kernel"}
        text = "\n".join(render_suite_lines(results, MIN_REPETITIONS))
        assert "counter_kernel" in text
        assert "best of 5" in text


class TestGateAcceptance:
    """ISSUE acceptance: the gate catches an injected 2x slowdown."""

    KERNELS = ["window_execution"]

    def _bench_to(self, history):
        results = run_suite(quick=True, kernels=self.KERNELS)
        append_record(
            history,
            results,
            SUITE_KIND,
            repetitions=MIN_REPETITIONS,
            spread=suite_spread(results),
        )

    def test_unmodified_rerun_passes_then_injected_slowdown_fails(
        self, tmp_path, monkeypatch
    ):
        history = tmp_path / "hist.jsonl"
        self._bench_to(history)

        # Honest rerun of identical work: the gate must pass.
        self._bench_to(history)
        report = evaluate_gate(read_history(history, kind=SUITE_KIND))
        assert report.passed, "\n".join(report.render_lines())

        # Inject a 2x slowdown into the hot kernel: after the real
        # slice executes, burn the same wall time again.
        original = SliceRunner.run_until

        def slowed(self, cycle_limit):
            t0 = time.perf_counter()
            original(self, cycle_limit)
            deadline = 2 * time.perf_counter() - t0
            while time.perf_counter() < deadline:
                pass

        monkeypatch.setattr(SliceRunner, "run_until", slowed)
        self._bench_to(history)
        report = evaluate_gate(read_history(history, kind=SUITE_KIND))
        assert not report.passed, "\n".join(report.render_lines())
        verdict = {v.kernel: v for v in report.verdicts}["window_execution"]
        assert verdict.verdict == REGRESSED
        assert verdict.ratio >= 1.4
        assert verdict.p_value < 0.05

        # And science was untouched: a post-restore rerun still passes
        # against the pre-injection baseline... once the poisoned
        # record is the baseline, however, the rerun shows IMPROVED —
        # either way, not REGRESSED.
        monkeypatch.undo()
        self._bench_to(history)
        report = evaluate_gate(read_history(history, kind=SUITE_KIND))
        assert report.passed, "\n".join(report.render_lines())
