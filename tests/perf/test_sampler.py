"""The stack sampler: capture, serialization, attribution, overhead."""

from __future__ import annotations

import time

import pytest

from repro.obs.trace import Tracer, WALL
from repro.perf.sampler import (
    SAMPLE_LOG_SCHEMA,
    FrameKey,
    SampleLog,
    StackSample,
    StackSampler,
    attribute_to_spans,
)
from tests.perf.conftest import make_sample_log


def _busy_wait(seconds: float) -> int:
    """Pure-Python spin so the sampler has a stack to catch."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += 1
    return acc


class TestStackSampler:
    def test_captures_samples_of_the_calling_thread(self):
        sampler = StackSampler(interval_s=0.001)
        sampler.start()
        try:
            _busy_wait(0.08)
        finally:
            log = sampler.stop()
        assert len(log) >= 5
        assert log.duration_s >= 0.08
        # The busy-wait function is on (and at the leaf of) hot stacks.
        leaves = {s.frames[-1].func for s in log.samples if s.frames}
        assert "_busy_wait" in leaves

    def test_stacks_are_root_first(self):
        sampler = StackSampler(interval_s=0.001)
        sampler.start()
        try:
            _busy_wait(0.05)
        finally:
            log = sampler.stop()
        hot = [s for s in log.samples if s.frames[-1].func == "_busy_wait"]
        assert hot, "no sample landed in the busy loop"
        # Root end of the stack is the test runner, not the leaf.
        assert hot[0].frames[0].func != "_busy_wait"

    def test_sample_timestamps_on_perf_counter_clock(self):
        t0 = time.perf_counter()
        sampler = StackSampler(interval_s=0.001)
        sampler.start()
        try:
            _busy_wait(0.03)
        finally:
            log = sampler.stop()
        t1 = time.perf_counter()
        assert all(t0 <= s.t <= t1 for s in log.samples)

    def test_start_twice_rejected(self):
        sampler = StackSampler(interval_s=0.01)
        sampler.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            StackSampler().stop()

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            StackSampler(interval_s=0.0)

    def test_restartable_after_stop(self):
        sampler = StackSampler(interval_s=0.001)
        sampler.start()
        _busy_wait(0.02)
        first = sampler.stop()
        sampler.start()
        _busy_wait(0.02)
        second = sampler.stop()
        # The second session starts fresh: its own clock window, no
        # samples carried over from the first.
        assert second.started_s >= first.stopped_s
        assert all(s.t >= second.started_s for s in second.samples)


class TestSampleLogJson:
    def test_roundtrip_is_lossless(self, sample_log):
        doc = sample_log.to_json_dict()
        assert doc["schema"] == SAMPLE_LOG_SCHEMA
        back = SampleLog.from_json_dict(doc)
        assert back == sample_log

    def test_frame_table_is_interned(self, sample_log):
        doc = sample_log.to_json_dict()
        # 10 samples over 4 distinct frames: the table stores each once.
        assert len(doc["frames"]) == 4
        assert len(doc["stacks"]) == len(doc["times"]) == 10

    def test_unknown_schema_rejected(self, sample_log):
        doc = sample_log.to_json_dict()
        doc["schema"] = "repro_samples/99"
        with pytest.raises(ValueError, match="schema"):
            SampleLog.from_json_dict(doc)


class TestFrameKey:
    def test_label_shortens_path(self):
        key = FrameKey(func="run", file="/a/b/stream.py", line=438)
        assert key.label() == "run (stream.py:438)"


class TestSpanAttribution:
    def _tracer(self) -> Tracer:
        tracer = Tracer()
        # outer sim span [0, 10]; inner cpu span [2, 4]; hpm span [6, 7]
        tracer.record("simulate", "sim", start_s=0.0, duration_s=10.0, clock=WALL)
        tracer.record("slice", "cpu", start_s=2.0, duration_s=2.0, clock=WALL)
        tracer.record("sample", "hpm", start_s=6.0, duration_s=1.0, clock=WALL)
        return tracer

    def _log_at(self, times):
        frame = FrameKey(func="f", file="f.py", line=1)
        return SampleLog(
            interval_s=0.01,
            started_s=0.0,
            stopped_s=20.0,
            samples=[StackSample(t=t, frames=(frame,)) for t in times],
        )

    def test_innermost_span_wins(self):
        attribution = attribute_to_spans(
            self._log_at([1.0, 3.0, 6.5, 9.0]), self._tracer()
        )
        assert attribution.by_category == {"sim": 2, "cpu": 1, "hpm": 1}
        assert attribution.unattributed == 0

    def test_sample_outside_all_spans_unattributed(self):
        attribution = attribute_to_spans(self._log_at([15.0]), self._tracer())
        assert attribution.by_category == {}
        assert attribution.unattributed == 1

    def test_seconds_scales_by_interval(self):
        attribution = attribute_to_spans(
            self._log_at([1.0, 1.1, 1.2]), self._tracer()
        )
        assert attribution.seconds("sim") == pytest.approx(0.03)
        assert attribution.seconds("cpu") == 0.0

    def test_render_lines_cover_every_category(self):
        attribution = attribute_to_spans(
            self._log_at([1.0, 3.0, 15.0]), self._tracer()
        )
        text = "\n".join(attribution.render_lines())
        for token in ("sim", "cpu", "(no span)"):
            assert token in text


def _fixed_work(iterations: int) -> int:
    """A fixed amount of pure-Python work (not deadline-bounded, so
    its wall time actually reflects any sampling overhead)."""
    acc = 0
    for i in range(iterations):
        acc += i * i
    return acc


@pytest.mark.slow
class TestOverheadBound:
    def test_sampling_overhead_under_five_percent(self):
        """The <5% bound, measured as a ratio of best-of-N minima.

        Min-of-reps on identical deterministic work isolates the
        sampler's cost from scheduler noise the same way the bench
        suite does.
        """
        iterations = 2_000_000

        def one(with_sampler: bool) -> float:
            sampler = StackSampler(interval_s=0.005)
            if with_sampler:
                sampler.start()
            try:
                t0 = time.perf_counter()
                _fixed_work(iterations)
                return time.perf_counter() - t0
            finally:
                if with_sampler:
                    sampler.stop()

        # Interleave the two arms so CPU-frequency drift and background
        # load hit both the same way, then compare minima.
        _fixed_work(iterations)  # warm-up
        baseline = float("inf")
        sampled = float("inf")
        for _ in range(9):
            baseline = min(baseline, one(with_sampler=False))
            sampled = min(sampled, one(with_sampler=True))
        assert sampled <= baseline * 1.05, (
            f"sampling overhead {(sampled / baseline - 1) * 100:.2f}% "
            f"exceeds the 5% bound"
        )
