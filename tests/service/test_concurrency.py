"""Concurrency and fault recovery: races, killed workers, determinism.

The chaos test arms the chaos layer's ``svc.<kind>`` fault point (via
``REPRO_CHAOS``, exactly as the sweep's chaos-smoke does) against a
``process``-mode server: the pool worker executing the job is killed
mid-flight with ``os._exit``, the supervisor path tears the pool down
and retries, and the retried artifact must be byte-identical to a
clean run — at-least-once execution with exactly-once results.
"""

from __future__ import annotations

import json
import multiprocessing
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import chaos
from repro.service.app import ServiceServer
from repro.service.client import ServiceClient
from tests.service.conftest import WINDOWS


def _multiprocessing_usable() -> bool:
    try:
        ctx = multiprocessing.get_context()
        with ctx.Pool(1) as pool:
            return pool.apply(int, ("1",)) == 1
    except (OSError, NotImplementedError, ValueError):
        return False


needs_mp = pytest.mark.skipif(
    not _multiprocessing_usable(), reason="multiprocessing unusable here"
)


def test_submission_race_is_deterministic(
    tmp_path, service_config_dict
):
    """N threads racing the same POST observe one job, one payload."""
    server = ServiceServer(tmp_path / "svc", workers=3).start()
    try:
        def one(i):
            client = ServiceClient(server.url)
            out = client.run(
                "characterize", service_config_dict, {"windows": WINDOWS}
            )
            return out["job"]["id"], out["job"]["artifact_key"], out["body"]

        with ThreadPoolExecutor(max_workers=12) as tpe:
            results = list(tpe.map(one, range(24)))

        ids = {r[0] for r in results}
        artifact_keys = {r[1] for r in results}
        bodies = {r[2] for r in results}
        assert len(ids) == 1
        assert len(artifact_keys) == 1
        assert len(bodies) == 1
        assert (
            server.state.metrics_document()["summary"]["singleflight"][
                "executed"
            ]
            == 1
        )
    finally:
        server.stop()


@needs_mp
def test_chaos_kill_retried_and_byte_identical(
    tmp_path, service_config_dict, monkeypatch
):
    # Clean run first (inline server, separate data dir) — the
    # reference payload the post-crash retry must reproduce exactly.
    clean_server = ServiceServer(tmp_path / "clean", workers=1).start()
    try:
        clean = ServiceClient(clean_server.url).run(
            "figure", service_config_dict, {"number": 3}
        )
    finally:
        clean_server.stop()

    marker_dir = tmp_path / "chaos-markers"
    marker_dir.mkdir()
    monkeypatch.setenv(
        chaos.ENV_VAR,
        json.dumps({"dir": str(marker_dir), "kill": {"svc.figure": 1}}),
    )
    server = ServiceServer(
        tmp_path / "svc", workers=1, mode="process"
    ).start()
    try:
        out = ServiceClient(server.url, timeout=300).run(
            "figure", service_config_dict, {"number": 3}, wait_s=300
        )
        # The kill budget was spent: the worker died once, mid-job.
        assert list(marker_dir.glob("kill.svc.figure.*"))
        job = out["job"]
        assert job["status"] == "done"
        assert job["attempts"] >= 2  # one death + one successful retry
        assert out["body"] == clean["body"]
        retries = server.state.metrics_document()["summary"]["jobs"].get(
            "retry", 0
        )
        assert retries >= 1
        failures = server.state.metrics.value(
            "service.pool.failures", {"degraded": False}
        )
        assert failures is not None and failures >= 1
    finally:
        server.stop()


@needs_mp
def test_process_mode_byte_identical_to_inline(
    tmp_path, service_config_dict
):
    bodies = {}
    for mode in ("inline", "process"):
        server = ServiceServer(
            tmp_path / mode, workers=1, mode=mode
        ).start()
        try:
            out = ServiceClient(server.url, timeout=300).run(
                "conform", service_config_dict, {"windows": WINDOWS}
            )
            bodies[mode] = out["body"]
        finally:
            server.stop()
    assert bodies["inline"] == bodies["process"]
