"""Artifact index properties: round-trips, canonicalization, crash-safety.

Hypothesis drives the three ISSUE-mandated properties:

* a job record round-trips through SQLite unchanged;
* artifact put/get round-trips and the index row matches the file;
* after a torn write corrupts the database, reopening rebuilds an
  index equal to the pre-crash state (files are the truth).
"""

from __future__ import annotations

import json
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.chaos import corrupt_entry
from repro.service.index import ARTIFACT_SUFFIX, ArtifactIndex
from repro.service.model import STATUSES, JobRecord, job_id_for_key

KEY_ALPHABET = "0123456789abcdef"

keys = st.text(KEY_ALPHABET, min_size=64, max_size=64)
params = st.dictionaries(
    st.sampled_from(["windows", "number", "skip_slow", "only"]),
    st.one_of(st.integers(0, 100), st.booleans(), st.none()),
    max_size=3,
)
timestamps = st.one_of(
    st.none(), st.floats(min_value=0, max_value=2e9, allow_nan=False)
)

job_records = st.builds(
    JobRecord,
    job_id=keys.map(job_id_for_key),
    key=keys,
    kind=st.sampled_from(["characterize", "figure", "sweep", "conform"]),
    status=st.sampled_from(STATUSES),
    config_key=keys,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    params=params,
    attempts=st.integers(min_value=0, max_value=5),
    error=st.one_of(st.none(), st.text(max_size=40)),
    artifact_key=st.one_of(st.none(), keys),
    created_at=timestamps,
    started_at=timestamps,
    finished_at=timestamps,
)


def make_spec_dict(key: str, kind: str = "characterize") -> dict:
    """A minimal spec-shaped dict (the index never interprets configs)."""
    return {"kind": kind, "config": {"marker": key[:8]}, "params": {}}


class TestJobRoundTrip:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(record=job_records)
    def test_upsert_get_round_trip(self, tmp_path, record):
        index = ArtifactIndex(tmp_path / "svc")
        try:
            index.upsert_job(record)
            assert index.get_job(record.job_id) == record
        finally:
            index.close()

    def test_update_preserves_stored_spec(self, tmp_path):
        index = ArtifactIndex(tmp_path / "svc")
        try:
            record = JobRecord(
                job_id="j" + "0" * 24,
                key="0" * 64,
                kind="characterize",
                status="queued",
                config_key="1" * 64,
                seed=7,
                params={},
            )
            index.upsert_job(record, spec_dict=make_spec_dict(record.key))
            record.status = "running"
            index.upsert_job(record)  # no spec_dict on update
            assert index.job_spec_dict(record.job_id) == make_spec_dict(
                record.key
            )
        finally:
            index.close()


class TestArtifacts:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        key=keys,
        body=st.text(max_size=500),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_put_get_round_trip(self, tmp_path, key, body, seed):
        index = ArtifactIndex(tmp_path / "svc")
        try:
            row = index.put_artifact(
                key,
                make_spec_dict(key),
                config_key="c" * 64,
                seed=seed,
                body=body,
                manifest={"git": "test", "note": "x"},
            )
            doc = index.get_artifact(key)
            assert doc["body"] == body
            assert doc["seed"] == seed
            assert index.artifact_row(key) == row
            assert row.nbytes == (
                index.artifact_dir / f"{key}{ARTIFACT_SUFFIX}"
            ).stat().st_size
        finally:
            index.close()

    def test_corrupt_artifact_quarantined_and_dropped(self, tmp_path):
        index = ArtifactIndex(tmp_path / "svc")
        try:
            key = "a" * 64
            index.put_artifact(
                key, make_spec_dict(key), "c" * 64, 1, "body\n", {"git": "t"}
            )
            corrupt_entry(index.artifact_dir / f"{key}{ARTIFACT_SUFFIX}")
            assert index.get_artifact(key) is None
            assert index.artifact_row(key) is None
            quarantined = list(index.artifact_dir.glob("quarantine/*"))
            assert len(quarantined) == 1
        finally:
            index.close()


class TestCrashSafety:
    def _populate(self, root, n):
        index = ArtifactIndex(root)
        rows = []
        for i in range(n):
            key = f"{i:064x}"
            rows.append(
                index.put_artifact(
                    key,
                    make_spec_dict(key),
                    config_key=f"{i + 1000:064x}",
                    seed=i,
                    body=f"report {i}\n",
                    manifest={"git": "test"},
                    created_at=1000.0 + i,
                )
            )
        before_jobs = {
            job_id_for_key(r.key): index.get_artifact(r.key)["spec"]
            for r in rows
        }
        index.close()
        return rows, before_jobs

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=1, max_value=5),
        tear=st.sampled_from(["truncate", "garbage", "bitflip"]),
    )
    def test_torn_db_rebuild_matches_pre_crash_state(self, tmp_path, n, tear):
        root = tmp_path / f"svc-{n}-{tear}"
        if root.exists():
            shutil.rmtree(root)
        rows, before_jobs = self._populate(root, n)
        db = root / "index.sqlite"
        blob = db.read_bytes()
        if tear == "truncate":
            db.write_bytes(blob[: max(20, len(blob) // 3)])
        elif tear == "garbage":
            db.write_bytes(b"this is not a sqlite database at all\n" * 40)
        else:
            corrupted = bytearray(blob)
            for at in range(0, min(len(corrupted), 4096), 7):
                corrupted[at] ^= 0xFF
            db.write_bytes(bytes(corrupted))

        reopened = ArtifactIndex(root)
        try:
            if reopened.rebuilds == 0:
                # SQLite shrugged this particular tear off; the
                # crash-safety claim is then simply untested here.
                return
            assert reopened.list_artifacts() == rows
            jobs = reopened.list_jobs()
            assert {j.job_id for j in jobs} == set(before_jobs)
            for job in jobs:
                assert job.status == "done"
                assert job.artifact_key == job.key
                assert (
                    reopened.job_spec_dict(job.job_id)
                    == before_jobs[job.job_id]
                )
        finally:
            reopened.close()

    def test_explicit_rebuild_equals_original(self, tmp_path):
        root = tmp_path / "svc"
        rows, _ = self._populate(root, 4)
        index = ArtifactIndex(root)
        try:
            before = index.list_artifacts()
            assert index.rebuild() == 4
            assert index.list_artifacts() == before == rows
        finally:
            index.close()

    def test_recover_interrupted_requeues_running(self, tmp_path):
        index = ArtifactIndex(tmp_path / "svc")
        try:
            record = JobRecord(
                job_id="j" + "5" * 24,
                key="5" * 64,
                kind="figure",
                status="running",
                config_key="6" * 64,
                seed=3,
                params={"number": 3},
            )
            index.upsert_job(record, spec_dict=make_spec_dict(record.key))
            queued = index.recover_interrupted()
            assert [j.job_id for j in queued] == [record.job_id]
            assert index.get_job(record.job_id).status == "queued"
        finally:
            index.close()


def test_stats_counts(tmp_path):
    index = ArtifactIndex(tmp_path / "svc")
    try:
        key = "b" * 64
        index.put_artifact(
            key, make_spec_dict(key), "c" * 64, 1, "x\n", {"git": "t"}
        )
        index.upsert_job(
            JobRecord(
                job_id=job_id_for_key(key),
                key=key,
                kind="characterize",
                status="done",
                config_key="c" * 64,
                seed=1,
                params={},
                artifact_key=key,
            )
        )
        stats = index.stats()
        assert stats["artifacts"] == 1
        assert stats["jobs_done"] == 1
        assert stats["artifact_bytes"] > 0
        assert json.dumps(stats)  # JSON-serializable for the CLI dump
    finally:
        index.close()
