"""Job model: validation codes, normalization, identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.model import (
    FIGURE_NUMBERS,
    KINDS,
    JobValidationError,
    job_id_for_key,
    job_key,
    parse_job_request,
)


def spec_for(config_dict, kind="characterize", params=None):
    return parse_job_request(
        {"kind": kind, "config": config_dict, "params": params or {}}
    )


class TestValidation:
    def test_non_object_body(self):
        with pytest.raises(JobValidationError) as err:
            parse_job_request([1, 2])
        assert err.value.code == "invalid-request"

    def test_unknown_kind(self, service_config_dict):
        with pytest.raises(JobValidationError) as err:
            parse_job_request(
                {"kind": "frobnicate", "config": service_config_dict}
            )
        assert err.value.code == "invalid-kind"
        assert "characterize" in err.value.detail

    def test_unknown_top_level_field(self, service_config_dict):
        with pytest.raises(JobValidationError) as err:
            parse_job_request(
                {
                    "kind": "characterize",
                    "config": service_config_dict,
                    "priority": 9,
                }
            )
        assert err.value.code == "invalid-request"
        assert "priority" in str(err.value)

    def test_missing_config(self):
        with pytest.raises(JobValidationError) as err:
            parse_job_request({"kind": "characterize"})
        assert err.value.code == "invalid-config"

    def test_config_io_error_surfaces_in_detail(self):
        with pytest.raises(JobValidationError) as err:
            parse_job_request({"kind": "characterize", "config": {"bogus": 1}})
        assert err.value.code == "invalid-config"
        assert err.value.detail  # the config_io ValueError text

    def test_unknown_param(self, service_config_dict):
        with pytest.raises(JobValidationError) as err:
            spec_for(
                service_config_dict, params={"windows": 6, "threads": 4}
            )
        assert err.value.code == "invalid-params"
        assert "threads" in str(err.value)

    def test_window_bounds(self, service_config_dict):
        with pytest.raises(JobValidationError):
            spec_for(service_config_dict, params={"windows": 0})
        with pytest.raises(JobValidationError):
            spec_for(service_config_dict, params={"windows": True})

    def test_figure_number_required_and_bounded(self, service_config_dict):
        with pytest.raises(JobValidationError):
            spec_for(service_config_dict, kind="figure")
        with pytest.raises(JobValidationError):
            spec_for(service_config_dict, kind="figure", params={"number": 11})
        for number in FIGURE_NUMBERS:
            spec = spec_for(
                service_config_dict, kind="figure", params={"number": number}
            )
            assert spec.params == {"number": number}

    def test_sweep_only_validated_and_sorted(self, service_config_dict):
        with pytest.raises(JobValidationError) as err:
            spec_for(
                service_config_dict, kind="sweep", params={"only": ["nope"]}
            )
        assert err.value.code == "invalid-params"
        spec = spec_for(
            service_config_dict,
            kind="sweep",
            params={"only": ["fig03_gc", "fig02_throughput"]},
        )
        assert spec.params == {"only": ["fig02_throughput", "fig03_gc"]}

    def test_objprof_defaults_and_validation(self, service_config_dict):
        bare = spec_for(service_config_dict, kind="objprof")
        assert bare.params == {"windows": 48, "top": 5, "validate": True}
        spelled = spec_for(
            service_config_dict,
            kind="objprof",
            params={"windows": 48, "top": 5, "validate": True},
        )
        assert bare.key == spelled.key
        with pytest.raises(JobValidationError):
            spec_for(service_config_dict, kind="objprof", params={"top": 0})
        with pytest.raises(JobValidationError):
            spec_for(
                service_config_dict, kind="objprof", params={"validate": 1}
            )
        with pytest.raises(JobValidationError) as err:
            spec_for(
                service_config_dict, kind="objprof", params={"number": 3}
            )
        assert err.value.code == "invalid-params"


class TestIdentity:
    def test_defaults_fill_in(self, service_config_dict):
        bare = spec_for(service_config_dict)
        spelled = spec_for(service_config_dict, params={"windows": 60})
        assert bare.key == spelled.key
        assert bare.params == {"windows": 60}

    def test_job_id_is_pure_function_of_key(self, service_config_dict):
        spec = spec_for(service_config_dict)
        assert spec.job_id == job_id_for_key(spec.key)
        assert spec.job_id.startswith("j")

    def test_kinds_do_not_collide(self, service_config_dict):
        keys = {
            spec_for(service_config_dict, kind="characterize").key,
            spec_for(service_config_dict, kind="sweep").key,
            spec_for(service_config_dict, kind="conform").key,
        }
        assert len(keys) == 3

    def test_spec_round_trips_through_to_dict(self, service_config_dict):
        spec = spec_for(service_config_dict, params={"windows": 7})
        again = parse_job_request(spec.to_dict())
        assert again == spec

    @settings(max_examples=20, deadline=None)
    @given(shuffle=st.randoms(use_true_random=False))
    def test_key_ignores_dict_key_order(
        self, service_config_dict, shuffle
    ):
        items = list(service_config_dict.items())
        shuffle.shuffle(items)
        shuffled = dict(items)
        assert (
            spec_for(shuffled).key == spec_for(service_config_dict).key
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=2,
            max_size=2,
            unique=True,
        )
    )
    def test_seed_changes_the_key(self, service_config_dict, seeds):
        variants = []
        for seed in seeds:
            payload = dict(service_config_dict)
            payload["seed"] = seed
            variants.append(spec_for(payload))
        assert variants[0].key != variants[1].key
        assert variants[0].config_key != variants[1].config_key

    def test_key_is_raw_sha256_of_canonical_json(self, service_config_dict):
        spec = spec_for(service_config_dict)
        assert spec.key == job_key(
            "characterize", spec.config_payload, spec.params
        )
        assert len(spec.key) == 64


def test_kind_catalog_is_stable():
    assert KINDS == ("characterize", "figure", "sweep", "conform", "objprof")


def test_every_kind_has_a_handler():
    from repro.service.executor import _HANDLERS

    assert set(_HANDLERS) == set(KINDS)


def test_objprof_job_executes_to_cli_identical_body(service_config_dict):
    """An ``objprof`` job's artifact body is exactly the rendered
    experiment report the CLI prints (science-neutrality contract)."""
    from repro.experiments import exp_objprof
    from repro.service.executor import execute_spec

    spec = parse_job_request(
        {
            "kind": "objprof",
            "config": service_config_dict,
            "params": {"windows": 6, "validate": False},
        }
    )
    result = execute_spec(spec)
    expected = exp_objprof.run(
        spec.config(), hw_windows=6, top_n=5, validate=False
    )
    assert result["body"] == "\n".join(expected.render_lines()) + "\n"
    assert result["manifest"]["kind"] == "objprof"
    assert "object-centric site profile" in result["body"]
