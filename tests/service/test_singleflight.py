"""Single-flight acceptance: a thundering herd costs one simulation.

The ISSUE's acceptance criterion, verbatim: 1000 concurrent identical
submissions must produce exactly one underlying simulation, bit-
identical responses for every caller, and a ``/v1/metrics`` document
reporting the coalesced count.  The 1000-submission race runs at the
:class:`ServiceState` level (no sockets — the dedup logic is what's
under test); a real HTTP burst is layered on top at a size that keeps
the tier-1 suite fast, with the full-scale version in the slow-marked
loadgen test.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runcache import RunCache, set_default_cache
from repro.service.model import parse_job_request
from repro.service.state import ServiceState
from repro.service.worker import WorkerPool
from tests.service.conftest import WINDOWS

SUBMISSIONS = 1000


@pytest.fixture
def fresh_cache():
    """Install an empty process-wide run cache; restore the old one."""
    cache = RunCache()
    previous = set_default_cache(cache)
    yield cache
    set_default_cache(previous)


def make_spec(service_config_dict, seed=2007, windows=WINDOWS):
    payload = dict(service_config_dict)
    payload["seed"] = seed
    return parse_job_request(
        {
            "kind": "characterize",
            "config": payload,
            "params": {"windows": windows},
        }
    )


def single_run_misses(service_config_dict):
    """Cache misses of exactly one clean job execution."""
    from repro.service.executor import execute_spec

    cache = RunCache()
    previous = set_default_cache(cache)
    try:
        result = execute_spec(make_spec(service_config_dict))
    finally:
        set_default_cache(previous)
    return cache.stats.misses, result


def test_thousand_concurrent_submissions_one_simulation(
    tmp_path, service_config_dict, fresh_cache
):
    baseline_misses, clean = single_run_misses(service_config_dict)
    assert baseline_misses >= 1
    assert fresh_cache.stats.lookups == 0  # baseline used its own cache

    state = ServiceState(tmp_path / "svc", queue_capacity=64)
    pool = WorkerPool(state, workers=4).start()
    try:
        spec = make_spec(service_config_dict)
        barrier = threading.Barrier(32)

        def submit(i):
            if i < 32:
                barrier.wait(timeout=30)  # a genuinely simultaneous front
            return state.submit(spec)

        with ThreadPoolExecutor(max_workers=32) as tpe:
            outcomes = list(tpe.map(submit, range(SUBMISSIONS)))

        # Every caller saw the same job.
        job_ids = {record.job_id for record, _ in outcomes}
        assert job_ids == {spec.job_id}
        by_outcome = {}
        for _, outcome in outcomes:
            by_outcome[outcome] = by_outcome.get(outcome, 0) + 1
        assert by_outcome["submitted"] == 1
        assert sum(by_outcome.values()) == SUBMISSIONS

        record = state.wait_for(spec.job_id, timeout=120)
        assert record.status == "done"

        # Exactly one underlying simulation: the burst cost precisely
        # what one clean execution costs, and one execution happened.
        assert fresh_cache.stats.misses == baseline_misses
        doc = state.metrics_document()
        sf = doc["summary"]["singleflight"]
        assert sf["executed"] == 1
        assert sf["coalesced"] + sf["index_hit"] == SUBMISSIONS - 1
        assert sf["deduped"] == SUBMISSIONS - 1
        assert doc["summary"]["jobs"]["submitted"] == 1

        # Bit-identical to the clean run, for every reader.
        artifact = state.artifact(spec.key)
        assert artifact["body"] == clean["body"]
        assert (
            artifact["manifest"]["body_sha256"]
            == clean["manifest"]["body_sha256"]
        )

        # Late submissions are index hits against the stored artifact.
        late_record, late_outcome = state.submit(spec)
        assert late_outcome == "index-hit"
        assert late_record.artifact_key == spec.key
    finally:
        pool.stop()
        state.close()


def test_http_burst_coalesces(server, client, service_config_dict):
    """The same race through real sockets, sized for tier-1."""
    requests = 64

    def one(_):
        status, doc, _ = client.submit(
            "characterize", service_config_dict, {"windows": WINDOWS}
        )
        assert status in (200, 202)
        return doc["outcome"], doc["job"]["id"]

    with ThreadPoolExecutor(max_workers=16) as tpe:
        results = list(tpe.map(one, range(requests)))

    ids = {job_id for _, job_id in results}
    assert len(ids) == 1
    job = client.job(ids.pop(), wait_s=120)
    assert job["status"] == "done"

    bodies = set()
    with ThreadPoolExecutor(max_workers=8) as tpe:
        for body in tpe.map(
            lambda _: client.artifact_text(job["artifact_key"]), range(8)
        ):
            bodies.add(body)
    assert len(bodies) == 1

    metrics = client.metrics()["summary"]["singleflight"]
    assert metrics["executed"] == 1  # the burst is this server's only job
    assert metrics["deduped"] >= requests - 1
