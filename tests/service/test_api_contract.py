"""API contract: golden shapes per endpoint, error envelopes, neutrality.

Responses contain volatile fields (timestamps, latencies, host/git
provenance); goldens therefore pin the *masked* document — every
volatile leaf replaced by a type marker — so the shape and all stable
values are exact while the suite stays reproducible.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.model import parse_job_request
from tests.service.conftest import WINDOWS

VOLATILE = "<number>"


def masked(doc, volatile_keys):
    """Deep-copy ``doc`` with volatile leaves replaced by a marker."""
    if isinstance(doc, dict):
        return {
            k: (
                VOLATILE
                if k in volatile_keys and isinstance(v, (int, float))
                else masked(v, volatile_keys)
            )
            for k, v in doc.items()
        }
    if isinstance(doc, list):
        return [masked(v, volatile_keys) for v in doc]
    return doc


JOB_VOLATILE = {"created_at", "started_at", "finished_at", "attempts"}


@pytest.fixture(scope="module")
def done_job(client, service_config_dict):
    """One finished characterize job every contract test reads."""
    out = client.run(
        "characterize", service_config_dict, {"windows": WINDOWS}
    )
    return out


@pytest.fixture(scope="module")
def spec(service_config_dict):
    return parse_job_request(
        {
            "kind": "characterize",
            "config": service_config_dict,
            "params": {"windows": WINDOWS},
        }
    )


class TestGoldenResponses:
    def test_post_jobs_dedup_golden(
        self, client, service_config_dict, done_job, spec
    ):
        status, doc, _ = client.submit(
            "characterize", service_config_dict, {"windows": WINDOWS}
        )
        assert status == 200
        assert masked(doc, JOB_VOLATILE) == {
            "outcome": "index-hit",
            "job": {
                "id": spec.job_id,
                "key": spec.key,
                "kind": "characterize",
                "status": "done",
                "config_key": spec.config_key,
                "seed": 2007,
                "params": {"windows": WINDOWS},
                "attempts": VOLATILE,
                "error": None,
                "created_at": VOLATILE,
                "started_at": VOLATILE,
                "finished_at": VOLATILE,
                "artifact_key": spec.key,
                "artifact_url": f"/v1/artifacts/{spec.key}",
            },
        }

    def test_get_job_golden(self, client, done_job, spec):
        status, doc, _ = client.request_json(
            "GET", f"/v1/jobs/{spec.job_id}"
        )
        assert status == 200
        job = doc["job"]
        assert job["id"] == spec.job_id
        assert job["status"] == "done"
        assert job["artifact_url"] == f"/v1/artifacts/{spec.key}"
        assert set(job) == {
            "id", "key", "kind", "status", "config_key", "seed", "params",
            "attempts", "error", "created_at", "started_at", "finished_at",
            "artifact_key", "artifact_url",
        }

    def test_artifact_served_as_plain_text(self, client, done_job, spec):
        status, headers, raw = client._request(
            "GET", f"/v1/artifacts/{spec.key}"
        )
        assert status == 200
        assert headers["content-type"] == "text/plain; charset=utf-8"
        assert raw.decode("utf-8") == done_job["body"]

    def test_manifest_golden(self, client, done_job, spec):
        doc = client.manifest(spec.key)
        manifest = doc["manifest"]
        assert manifest["schema"] == "repro_artifact_manifest/1"
        assert manifest["config_key"] == spec.config_key
        assert manifest["seed"] == 2007
        assert manifest["kind"] == "characterize"
        assert manifest["job_key"] == spec.key
        assert manifest["params"] == {"windows": WINDOWS}
        import hashlib

        assert manifest["body_sha256"] == hashlib.sha256(
            done_job["body"].encode("utf-8")
        ).hexdigest()
        row = doc["artifact"]
        assert row["key"] == spec.key
        assert row["kind"] == "characterize"
        assert row["nbytes"] > 0

    def test_healthz_golden(self, client):
        doc = client.healthz()
        assert masked(
            doc, {"uptime_s", "queue_depth", "in_flight", "artifacts",
                  "artifact_bytes", "jobs_done", "jobs_failed"}
        ) == {
            "status": "ok",
            "uptime_s": VOLATILE,
            "queue_depth": VOLATILE,
            "in_flight": VOLATILE,
            "queue_capacity": 256,
            "index": {
                "artifacts": VOLATILE,
                "artifact_bytes": VOLATILE,
                "rebuilds": 0,
                **{
                    k: VOLATILE
                    for k in doc["index"]
                    if k.startswith("jobs_")
                },
            },
        }

    def test_metrics_golden_shape(self, client, done_job):
        doc = client.metrics()
        assert doc["schema"] == "repro_service_metrics/1"
        summary = doc["summary"]
        assert set(summary) == {
            "queue_depth", "in_flight", "jobs", "singleflight",
            "cache_hit_ratio", "latency",
        }
        sf = summary["singleflight"]
        assert set(sf) == {"executed", "coalesced", "index_hit", "deduped"}
        assert sf["executed"] >= 1
        assert sf["deduped"] == sf["coalesced"] + sf["index_hit"]
        assert set(doc["metrics"]) == {"counters", "gauges", "histograms"}
        for endpoint, stats in summary["latency"].items():
            assert endpoint.startswith("/v1/")
            assert set(stats) == {"count", "mean_s", "p50_s", "p99_s"}
            assert stats["p50_s"] <= stats["p99_s"] or stats["count"] == 1


class TestErrorEnvelopes:
    def envelope(self, doc):
        assert set(doc) == {"error"}
        assert set(doc["error"]) == {"status", "code", "message", "detail"}
        return doc["error"]

    def test_bad_config_is_400_with_config_io_detail(self, client):
        status, doc, _ = client.request_json(
            "POST",
            "/v1/jobs",
            {"kind": "characterize", "config": {"bogus": 1}},
        )
        assert status == 400
        error = self.envelope(doc)
        assert error["status"] == 400
        assert error["code"] == "invalid-config"
        assert "config_io" in error["message"]
        assert error["detail"]  # the underlying ValueError text

    def test_bad_json_is_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/jobs", body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert self.envelope(doc)["code"] == "invalid-json"

    def test_empty_body_is_400(self, client):
        status, doc, _ = client.request_json("POST", "/v1/jobs")
        assert status == 400
        assert self.envelope(doc)["code"] == "invalid-request"

    def test_unknown_job_is_404(self, client):
        status, doc, _ = client.request_json("GET", "/v1/jobs/jdeadbeef")
        assert status == 404
        assert self.envelope(doc)["code"] == "unknown-job"

    def test_unknown_artifact_is_404(self, client):
        status, doc, _ = client.request_json(
            "GET", "/v1/artifacts/" + "f" * 64
        )
        assert status == 404
        assert self.envelope(doc)["code"] == "unknown-artifact"

    def test_unknown_route_is_404(self, client):
        status, doc, _ = client.request_json("GET", "/v2/everything")
        assert status == 404
        assert self.envelope(doc)["code"] == "not-found"

    def test_bad_wait_is_400(self, client):
        status, doc, _ = client.request_json(
            "GET", "/v1/jobs/jdeadbeef?wait=soon"
        )
        assert status == 400
        assert self.envelope(doc)["code"] == "invalid-request"

    def test_queue_full_is_429_with_retry_after(
        self, tmp_path, service_config_dict, monkeypatch
    ):
        import threading

        from repro.service import worker as worker_mod
        from repro.service.app import ServiceServer
        from repro.service.client import ServiceClient

        release = threading.Event()

        def stall(spec):
            release.wait(30)
            return {
                "key": spec.key,
                "body": "stalled\n",
                "manifest": {"git": "test"},
            }

        monkeypatch.setattr(worker_mod, "execute_spec", stall)
        server = ServiceServer(
            tmp_path / "svc", workers=1, queue_capacity=1
        ).start()
        try:
            local = ServiceClient(server.url)

            def submit(seed):
                payload = dict(service_config_dict)
                payload["seed"] = seed
                return local.submit("characterize", payload, {"windows": 2})

            # First job is claimed by the lone stalled worker, the
            # second fills the queue, the third must bounce.
            import time

            status1, _, _ = submit(1)
            assert status1 == 202
            deadline = time.monotonic() + 5.0
            while server.state.in_flight == 0:
                assert time.monotonic() < deadline, "worker never claimed"
                time.sleep(0.02)
            status2, _, _ = submit(2)
            assert status2 == 202
            status3, doc3, headers3 = submit(3)
            assert status3 == 429
            error = self.envelope(doc3)
            assert error["code"] == "queue-full"
            assert int(headers3["retry-after"]) >= 1
        finally:
            release.set()
            server.stop()


class TestScienceNeutrality:
    def test_job_body_byte_identical_to_cli(
        self, done_job, capsys
    ):
        from repro.cli import main

        code = main(
            [
                "characterize",
                "--scale",
                "quick",
                "--seed",
                "2007",
                "--windows",
                str(WINDOWS),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == done_job["body"]

    def test_figure_body_byte_identical_to_cli(
        self, client, service_config_dict, capsys
    ):
        from repro.cli import main

        out = client.run("figure", service_config_dict, {"number": 3})
        code = main(
            ["figure", "3", "--scale", "quick", "--seed", "2007"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == out["body"]

    def test_cli_import_does_not_load_service(self):
        src = Path(__file__).resolve().parents[2] / "src"
        probe = (
            "import sys; import repro.cli; "
            "mods = [m for m in sys.modules if m.startswith('repro.service')]; "
            "assert not mods, mods; "
            "import repro; import repro.obs; "
            "mods = [m for m in sys.modules if m.startswith('repro.service')]; "
            "assert not mods, mods; print('clean')"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "clean"
