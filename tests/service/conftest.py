"""Service-suite fixtures: a live inline-mode server on an ephemeral port.

The server (and its data dir) is module-scoped: jobs executed by one
test become index hits for the next, which is exactly the production
behavior under test — and it keeps the suite fast, because the 1.2 s
quick-scale characterization runs once per module, not once per test.
"""

from __future__ import annotations

import pytest

from repro.config_io import config_to_dict
from repro.experiments.common import quick_config
from repro.service.app import ServiceServer
from repro.service.client import ServiceClient

#: Small-but-real job parameters used throughout the suite.
WINDOWS = 6


@pytest.fixture(scope="session")
def service_config_dict():
    """The canonical config_io payload every test submits."""
    return config_to_dict(quick_config(seed=2007))


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    srv = ServiceServer(
        tmp_path_factory.mktemp("service-data"), port=0, workers=2
    ).start()
    yield srv
    srv.stop()


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)
