"""Worker pool behavior: retries, terminal failure, queue limits."""

from __future__ import annotations

import dataclasses
import random
import time

import pytest

from repro.experiments.supervisor import DEFAULT_POLICY
from repro.service import worker as worker_mod
from repro.service.model import parse_job_request
from repro.service.state import QueueFullError, ServiceState
from repro.service.worker import WorkerPool

FAST_POLICY = dataclasses.replace(
    DEFAULT_POLICY, backoff_base_s=0.01, backoff_cap_s=0.02, max_attempts=3
)


def make_spec(service_config_dict, seed=2007):
    payload = dict(service_config_dict)
    payload["seed"] = seed
    return parse_job_request(
        {"kind": "characterize", "config": payload, "params": {"windows": 2}}
    )


@pytest.fixture
def state(tmp_path):
    st = ServiceState(tmp_path / "svc", queue_capacity=4)
    yield st
    st.close()


def fake_result(spec):
    return {
        "key": spec.key,
        "body": f"report for {spec.key[:8]}\n",
        "manifest": {"git": "test"},
    }


def _hang(spec_dict):
    # Module-level so the process pool can pickle it by reference;
    # finite so a torn-down worker exits on its own (the supervisor
    # never waits for it).
    time.sleep(5)


class TestRetry:
    def test_transient_failures_retried_to_success(
        self, state, service_config_dict, monkeypatch
    ):
        calls = []

        def flaky(spec):
            calls.append(spec.key)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return fake_result(spec)

        monkeypatch.setattr(worker_mod, "execute_spec", flaky)
        pool = WorkerPool(
            state, workers=1, policy=FAST_POLICY, rng=random.Random(0)
        ).start()
        try:
            spec = make_spec(service_config_dict)
            state.submit(spec)
            record = state.wait_for(spec.job_id, timeout=30)
            assert record.status == "done"
            assert len(calls) == 3
            assert record.attempts == 3  # 2 retries + the success
            assert state.metrics_document()["summary"]["jobs"]["retry"] == 2
            assert state.artifact(spec.key)["body"] == fake_result(spec)["body"]
        finally:
            pool.stop()

    def test_permanent_failure_is_terminal_and_resubmittable(
        self, state, service_config_dict, monkeypatch
    ):
        def doomed(spec):
            raise ValueError("always broken")

        monkeypatch.setattr(worker_mod, "execute_spec", doomed)
        pool = WorkerPool(
            state, workers=1, policy=FAST_POLICY, rng=random.Random(0)
        ).start()
        try:
            spec = make_spec(service_config_dict)
            state.submit(spec)
            record = state.wait_for(spec.job_id, timeout=30)
            assert record.status == "failed"
            assert "always broken" in record.error
            assert record.attempts == FAST_POLICY.max_attempts
            # A failed key is not poisoned: resubmission requeues it.
            monkeypatch.setattr(worker_mod, "execute_spec", fake_result)
            record2, outcome = state.submit(spec)
            assert outcome == "resubmitted"
            assert record2.job_id == record.job_id
            final = state.wait_for(spec.job_id, timeout=30)
            assert final.status == "done"
        finally:
            pool.stop()

    def test_timeout_error_message_names_the_budget(
        self, state, service_config_dict, monkeypatch
    ):
        policy = dataclasses.replace(
            FAST_POLICY, task_timeout_s=0.05, max_attempts=1
        )
        runtime = worker_mod._WorkerRuntime("process", policy, state)
        monkeypatch.setattr(worker_mod, "execute_job", _hang)
        spec = make_spec(service_config_dict)
        try:
            if runtime.degraded:
                pytest.skip("multiprocessing unusable here")
            with pytest.raises(TimeoutError, match="task_timeout_s"):
                runtime.run_once(spec)
            assert runtime.pool is None  # torn down, rebuilt lazily
            assert runtime.pool_failures == 1
        finally:
            runtime.shutdown()


class TestQueueLimits:
    def test_queue_full_raises_with_backpressure_hint(
        self, tmp_path, service_config_dict
    ):
        state = ServiceState(tmp_path / "tiny", queue_capacity=2)
        try:
            # No workers: submissions pile up in the queue.
            for seed in (1, 2):
                state.submit(make_spec(service_config_dict, seed=seed))
            with pytest.raises(QueueFullError) as err:
                state.submit(make_spec(service_config_dict, seed=3))
            assert err.value.retry_after_s >= 1
            assert err.value.capacity == 2
            # Deduped submissions still succeed at capacity: no new work.
            _, outcome = state.submit(make_spec(service_config_dict, seed=1))
            assert outcome == "coalesced"
            assert (
                state.metrics_document()["summary"]["jobs"]["rejected"] == 1
            )
        finally:
            state.close()

    def test_invalid_pool_arguments(self, state):
        with pytest.raises(ValueError):
            WorkerPool(state, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(state, mode="quantum")
        with pytest.raises(ValueError):
            ServiceState("unused", queue_capacity=0)


class TestRecovery:
    def test_restart_requeues_and_finishes_interrupted_work(
        self, tmp_path, service_config_dict, monkeypatch
    ):
        spec = make_spec(service_config_dict)
        state = ServiceState(tmp_path / "svc")
        state.submit(spec)
        claimed = state.claim_next(timeout=1)
        assert claimed is not None  # job now "running"; simulate a crash
        state.close()

        monkeypatch.setattr(worker_mod, "execute_spec", fake_result)
        reborn = ServiceState(tmp_path / "svc")
        pool = WorkerPool(reborn, workers=1, policy=FAST_POLICY).start()
        try:
            record = reborn.wait_for(spec.job_id, timeout=30)
            assert record.status == "done"
            assert reborn.artifact(spec.key)["body"].startswith("report for")
        finally:
            pool.stop()
            reborn.close()
