"""Load generator: report math, tier-1 bursts, the 2k dedup storm."""

from __future__ import annotations

import json

import pytest

from repro.benchio import read_bench_payload
from repro.runcache import RunCache, set_default_cache
from repro.service.app import ServiceServer
from repro.service.loadgen import (
    LoadReport,
    RequestResult,
    run_closed_loop,
    run_open_loop,
    write_report_files,
)
from tests.service.conftest import WINDOWS


class TestReportMath:
    def build(self, latencies, failures=0):
        report = LoadReport(mode="closed", requests=len(latencies))
        for i, latency in enumerate(latencies):
            ok = i >= failures
            report.add(
                RequestResult(
                    ok=ok,
                    status=200 if ok else 500,
                    outcome="index-hit" if ok else None,
                    latency_s=latency,
                    body_sha256="x" * 64 if ok else None,
                    error=None if ok else "boom",
                )
            )
        report.duration_s = sum(latencies)
        return report

    def test_quantiles_and_ratios(self):
        report = self.build([0.01 * (i + 1) for i in range(100)])
        assert report.success_ratio == 1.0
        assert report.quantile(0.50) == pytest.approx(0.50)
        assert report.quantile(0.99) == pytest.approx(0.99)
        assert report.rate_rps > 0

    def test_failures_counted_and_5xx_flagged(self):
        report = self.build([0.01] * 10, failures=2)
        assert report.failures == 2
        assert report.server_errors == 2
        assert report.status_counts == {"200": 8, "500": 2}
        assert report.errors == ["boom", "boom"]

    def test_bench_envelope_is_schema_2(self, tmp_path):
        report = self.build([0.01, 0.02])
        payload = report.to_bench_payload()
        assert payload["kind"] == "service_load"
        assert read_bench_payload(payload)["requests"] == 2
        bench = tmp_path / "BENCH_service.json"
        write_report_files(report, bench_path=str(bench))
        assert read_bench_payload(json.loads(bench.read_text()))[
            "latency_p50_s"
        ] == report.quantile(0.5)

    def test_render_lines_warn_on_divergent_bodies(self):
        report = self.build([0.01])
        report.body_hashes["y" * 64] = 1
        assert any("distinct artifact bodies" in l for l in report.render_lines())


class TestBursts:
    def test_closed_loop_burst(self, server, service_config_dict):
        report = run_closed_loop(
            server.url,
            "characterize",
            service_config_dict,
            {"windows": WINDOWS},
            requests=48,
            concurrency=8,
        )
        assert report.requests == 48
        assert report.successes == 48
        assert report.server_errors == 0
        assert len(report.body_hashes) == 1
        assert report.metrics["summary"]["singleflight"]["executed"] == 1
        assert report.quantile(0.99) >= report.quantile(0.5)

    def test_open_loop_poisson_burst(self, server, service_config_dict):
        report = run_open_loop(
            server.url,
            "characterize",
            service_config_dict,
            {"windows": WINDOWS},
            requests=32,
            rate_rps=400.0,
            seed=7,
        )
        assert report.successes == 32
        assert report.server_errors == 0
        assert len(report.body_hashes) == 1

    def test_input_validation(self, server, service_config_dict):
        with pytest.raises(ValueError):
            run_closed_loop(server.url, "characterize", {}, requests=0)
        with pytest.raises(ValueError):
            run_open_loop(server.url, "characterize", {}, rate_rps=0.0)


@pytest.mark.slow
def test_two_thousand_identical_requests_one_simulation(
    tmp_path, service_config_dict
):
    """The ISSUE's full-scale storm: 2k concurrent identical requests,
    >= 99% success on the cache-hit fast path, exactly one simulation."""
    cache = RunCache()
    previous = set_default_cache(cache)
    server = ServiceServer(tmp_path / "svc", workers=4).start()
    try:
        report = run_closed_loop(
            server.url,
            "characterize",
            service_config_dict,
            {"windows": WINDOWS},
            requests=2000,
            concurrency=64,
        )
        assert report.success_ratio >= 0.99
        assert report.server_errors == 0
        assert len(report.body_hashes) == 1
        singleflight = report.metrics["summary"]["singleflight"]
        assert singleflight["executed"] == 1
        assert singleflight["deduped"] >= 1999
    finally:
        server.stop()
        set_default_cache(previous)
