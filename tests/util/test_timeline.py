"""Tests for time grids and sample series."""

import pytest

from repro.util.timeline import SampleSeries, SeriesBundle, TimeGrid


class TestTimeGrid:
    def test_times_are_midpoints(self):
        grid = TimeGrid(start=0.0, interval=1.0, count=3)
        assert grid.times() == [0.5, 1.5, 2.5]

    def test_index_of(self):
        grid = TimeGrid(start=10.0, interval=0.5, count=4)
        assert grid.index_of(10.0) == 0
        assert grid.index_of(11.9) == 3

    def test_index_out_of_range(self):
        grid = TimeGrid(start=0.0, interval=1.0, count=2)
        with pytest.raises(ValueError):
            grid.index_of(5.0)
        with pytest.raises(ValueError):
            grid.index_of(-0.1)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            TimeGrid(start=0.0, interval=0.0, count=1)
        with pytest.raises(ValueError):
            TimeGrid(start=0.0, interval=1.0, count=-1)

    def test_end(self):
        assert TimeGrid(start=1.0, interval=2.0, count=3).end == 7.0


class TestSampleSeries:
    def test_append_and_complete(self):
        grid = TimeGrid(0.0, 1.0, 2)
        s = SampleSeries("x", grid)
        s.append(1.0)
        assert not s.is_complete()
        s.append(2.0)
        assert s.is_complete()
        with pytest.raises(ValueError):
            s.append(3.0)

    def test_mean_and_window(self):
        grid = TimeGrid(0.0, 1.0, 4)
        s = SampleSeries("x", grid, values=[1.0, 2.0, 3.0, 4.0])
        assert s.mean() == 2.5
        assert s.window(1.0, 3.0) == [2.0, 3.0]

    def test_iteration_pairs_time_and_value(self):
        grid = TimeGrid(0.0, 2.0, 2)
        s = SampleSeries("x", grid, values=[5.0, 6.0])
        assert list(s) == [(1.0, 5.0), (3.0, 6.0)]

    def test_too_many_values_rejected(self):
        grid = TimeGrid(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            SampleSeries("x", grid, values=[1.0, 2.0])

    def test_empty_mean_raises(self):
        s = SampleSeries("x", TimeGrid(0.0, 1.0, 3))
        with pytest.raises(ValueError):
            s.mean()


class TestSeriesBundle:
    def test_row_appending(self):
        bundle = SeriesBundle(TimeGrid(0.0, 1.0, 2))
        bundle.add_series("a")
        bundle.add_series("b")
        bundle.append_row({"a": 1.0, "b": 2.0})
        assert bundle["a"].values == [1.0]
        assert bundle["b"].values == [2.0]

    def test_partial_row_rejected(self):
        bundle = SeriesBundle(TimeGrid(0.0, 1.0, 2))
        bundle.add_series("a")
        bundle.add_series("b")
        with pytest.raises(ValueError):
            bundle.append_row({"a": 1.0})

    def test_duplicate_series_rejected(self):
        bundle = SeriesBundle(TimeGrid(0.0, 1.0, 2))
        bundle.add_series("a")
        with pytest.raises(ValueError):
            bundle.add_series("a")

    def test_names_and_columns(self):
        bundle = SeriesBundle(TimeGrid(0.0, 1.0, 1))
        bundle.add_series("b")
        bundle.add_series("a")
        bundle.append_row({"a": 1.0, "b": 2.0})
        assert bundle.names() == ["a", "b"]
        assert bundle.as_columns()["b"] == [2.0]
        assert "a" in bundle
