"""Tests for the named RNG streams."""

from repro.util.rng import RngFactory, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "cache") == derive_seed(42, "cache")


def test_derive_seed_differs_by_name_and_root():
    assert derive_seed(42, "cache") != derive_seed(42, "branch")
    assert derive_seed(42, "cache") != derive_seed(43, "cache")


def test_same_name_returns_same_stream_object():
    factory = RngFactory(1)
    assert factory.stream("a") is factory.stream("a")


def test_different_names_are_independent():
    factory = RngFactory(1)
    a = factory.stream("a")
    b = factory.stream("b")
    seq_a = [a.random() for _ in range(5)]
    seq_b = [b.random() for _ in range(5)]
    assert seq_a != seq_b


def test_streams_reproduce_across_factories():
    xs = [RngFactory(7).stream("x").random() for _ in range(1)]
    ys = [RngFactory(7).stream("x").random() for _ in range(1)]
    assert xs == ys


def test_draw_order_on_one_stream_does_not_affect_another():
    f1 = RngFactory(3)
    f1.stream("noise").random()  # consume from an unrelated stream
    value_after = f1.stream("core").random()

    f2 = RngFactory(3)
    value_direct = f2.stream("core").random()
    assert value_after == value_direct


def test_fork_creates_independent_namespace():
    parent = RngFactory(5)
    child = parent.fork("sub")
    assert child.root_seed != parent.root_seed
    assert child.stream("x").random() != parent.stream("x").random()


def test_fork_is_deterministic():
    a = RngFactory(5).fork("sub").stream("x").random()
    b = RngFactory(5).fork("sub").stream("x").random()
    assert a == b
