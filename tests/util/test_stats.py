"""Tests for the statistics primitives, including the paper's
correlation formula."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    ks_2samp,
    pearson,
    percentile,
    shifted_zipf_weights,
    summarize,
)


class TestPearson:
    def test_perfect_positive(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert pearson(xs, [2 * x + 1 for x in xs]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert pearson(xs, [-3 * x for x in xs]) == pytest.approx(-1.0)

    def test_independent_data_is_weak(self):
        xs = [1, 2, 3, 4, 5, 6, 7, 8]
        ys = [5, 1, 4, 2, 6, 3, 8, 7]
        assert abs(pearson(xs, ys)) < 0.9

    def test_zero_variance_returns_zero(self):
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1.0], [1.0, 2.0])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson([1.0], [1.0])

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=40),
        st.floats(0.1, 100.0),
        st.floats(-1e3, 1e3),
    )
    def test_affine_invariance(self, xs, scale, shift):
        """r is invariant under positive affine transforms."""
        from hypothesis import assume

        # A (near-)constant sample is degenerate: scaling can turn an
        # exactly-zero variance into rounding dust and flip the
        # defined-as-zero result.
        assume(max(xs) - min(xs) > 1e-3 * (abs(max(xs)) + 1.0))
        ys = [x * 2.0 + 1.0 for x in xs]
        base = pearson(xs, ys)
        transformed = pearson([x * scale + shift for x in xs], ys)
        assert base == pytest.approx(transformed, abs=1e-6)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_bounded(self, xs):
        ys = list(reversed(xs))
        assert -1.0 <= pearson(xs, ys) <= 1.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p90_interpolates(self):
        values = list(range(1, 11))
        assert percentile(values, 90) == pytest.approx(9.1)

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_single_value(self):
        assert percentile([7.0], 90) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50), st.floats(0, 100))
    def test_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)


class TestShiftedZipf:
    def test_normalized(self):
        weights = shifted_zipf_weights(100, shift=30.0)
        assert math.fsum(weights) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = shifted_zipf_weights(50, shift=10.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_shift_flattens_head(self):
        sharp = shifted_zipf_weights(100, shift=0.0)
        flat = shifted_zipf_weights(100, shift=50.0)
        assert flat[0] < sharp[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            shifted_zipf_weights(0)
        with pytest.raises(ValueError):
            shifted_zipf_weights(10, shift=-1.0)


class TestSummaries:
    def test_summarize_basics(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_running_stats_matches_batch(self):
        values = [1.5, -2.0, 7.25, 0.0, 3.5]
        rs = RunningStats()
        for v in values:
            rs.add(v)
        batch = summarize(values)
        assert rs.mean == pytest.approx(batch.mean)
        assert rs.std == pytest.approx(batch.std)
        assert rs.minimum == batch.minimum
        assert rs.maximum == batch.maximum

    def test_running_stats_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_running_stats_property(self, values):
        rs = RunningStats()
        for v in values:
            rs.add(v)
        assert rs.count == len(values)
        assert rs.minimum == min(values)
        assert rs.maximum == max(values)
        assert rs.variance >= 0.0


class TestKs2Samp:
    def test_identical_samples_have_zero_statistic(self):
        xs = [float(i) for i in range(40)]
        r = ks_2samp(xs, list(xs))
        assert r.statistic == 0.0
        assert r.p_value == pytest.approx(1.0)

    def test_disjoint_samples_rejected(self):
        xs = [float(i) for i in range(40)]
        ys = [float(i) + 1000.0 for i in range(40)]
        r = ks_2samp(xs, ys)
        assert r.statistic == pytest.approx(1.0)
        assert r.p_value < 1e-6

    def test_statistic_is_exact_for_known_case(self):
        # At v=4 the CDFs are 4/4 vs 1/4 -> D = 0.75 exactly.
        r = ks_2samp([1.0, 2.0, 3.0, 4.0], [2.5, 4.5, 5.0, 6.0])
        assert r.statistic == pytest.approx(0.75)
        assert r.n_x == r.n_y == 4

    def test_same_distribution_not_rejected(self):
        import random as _random

        rng = _random.Random(13)
        xs = [rng.gauss(0.0, 1.0) for _ in range(120)]
        ys = [rng.gauss(0.0, 1.0) for _ in range(120)]
        assert ks_2samp(xs, ys).p_value > 0.05

    def test_shifted_distribution_rejected(self):
        import random as _random

        rng = _random.Random(13)
        xs = [rng.gauss(0.0, 1.0) for _ in range(120)]
        ys = [rng.gauss(1.5, 1.0) for _ in range(120)]
        assert ks_2samp(xs, ys).p_value < 0.001

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            ks_2samp([], [1.0])
        with pytest.raises(ValueError):
            ks_2samp([1.0], [])
