"""Tests for unit constants."""

from repro.util.units import GB, KB, MB, bytes_to_mb, mb_to_bytes


def test_binary_sizes():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_round_trip():
    assert bytes_to_mb(mb_to_bytes(3.5)) == 3.5


def test_mb_to_bytes_is_integral():
    assert isinstance(mb_to_bytes(1.25), int)
    assert mb_to_bytes(1.25) == 1310720
