"""Tests for the counter-group catalog and its HPM constraints."""

import pytest

from repro.hpm.events import BASE_EVENTS, Event
from repro.hpm.groups import GROUP_SIZE, CounterGroup, GroupCatalog, default_catalog


class TestCounterGroup:
    def test_base_events_required(self):
        with pytest.raises(ValueError):
            CounterGroup("bad", (Event.PM_CYC, Event.PM_LARX))

    def test_size_limit(self):
        too_many = tuple(Event)[:GROUP_SIZE] + (Event.PM_SYNC_CNT,)
        with pytest.raises(ValueError):
            CounterGroup("big", too_many)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            CounterGroup(
                "dup", (Event.PM_CYC, Event.PM_INST_CMPL, Event.PM_CYC)
            )

    def test_payload_excludes_base(self):
        group = CounterGroup(
            "ok", (Event.PM_CYC, Event.PM_INST_CMPL, Event.PM_LARX)
        )
        assert group.payload_events == (Event.PM_LARX,)


class TestDefaultCatalog:
    def test_every_group_fits_the_hardware(self):
        for group in default_catalog():
            assert len(group.events) <= GROUP_SIZE

    def test_every_group_can_compute_cpi(self):
        for group in default_catalog():
            for base in BASE_EVENTS:
                assert base in group.events

    def test_every_event_is_observable_somewhere(self):
        catalog = default_catalog()
        for event in Event:
            assert catalog.groups_with(event), f"{event} not in any group"

    def test_ifetch_group_pairs_ta_with_icache(self):
        """The group layout that enables the paper's target-mispredict
        vs instruction-cache-miss correlation."""
        group = default_catalog()["ifetch"]
        assert Event.PM_BR_MPRED_TA in group.events
        assert Event.PM_INST_FROM_L2 in group.events

    def test_duplicate_names_rejected(self):
        g = default_catalog()["basic"]
        with pytest.raises(ValueError):
            GroupCatalog([g, g])

    def test_names_listing(self):
        names = default_catalog().names()
        assert "basic" in names and "prefetch" in names
        assert len(names) == len(set(names))
