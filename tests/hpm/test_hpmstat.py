"""Tests for the hpmstat sampler and its one-group-at-a-time model."""

import pytest

from repro.hpm.counters import CounterBank
from repro.hpm.events import Event
from repro.hpm.hpmstat import HpmStat


class FakeExecutor:
    """A deterministic window executor for testing the sampler."""

    def __init__(self):
        self.calls = []

    def execute_window(self, window_index):
        self.calls.append(window_index)
        bank = CounterBank()
        bank.add(Event.PM_CYC, 1000 + window_index)
        bank.add(Event.PM_INST_CMPL, 400)
        bank.add(Event.PM_LARX, 3)
        bank.add(Event.PM_DERAT_MISS, 9)
        return bank.snapshot()


@pytest.fixture()
def hpm():
    return HpmStat(FakeExecutor(), window_interval_s=0.1)


class TestSampleGroup:
    def test_restricts_to_group_events(self, hpm):
        samples = hpm.sample_group("sync", [0, 1])
        snap = samples[0].snapshot
        assert snap[Event.PM_LARX] == 3
        # DERAT misses are not in the sync group: invisible.
        assert snap[Event.PM_DERAT_MISS] == 0

    def test_base_events_always_visible(self, hpm):
        samples = hpm.sample_group("xlate", [5])
        assert samples[0].snapshot.cpi > 0

    def test_group_name_recorded(self, hpm):
        sample = hpm.sample_group("basic", [2])[0]
        assert sample.group_name == "basic"
        assert hpm.group_of(sample).name == "basic"

    def test_timestamps_follow_indices(self, hpm):
        samples = hpm.sample_group("basic", [0, 10])
        assert samples[1].time_s == pytest.approx(1.0)


class TestSampleAll:
    def test_omniscient_sees_everything(self, hpm):
        sample = hpm.sample_all([1])[0]
        assert sample.group_name is None
        assert sample.snapshot[Event.PM_DERAT_MISS] == 9
        assert sample.snapshot[Event.PM_LARX] == 3


class TestToBundle:
    def test_bundle_columns(self, hpm):
        samples = hpm.sample_all([0, 1, 2])
        bundle = HpmStat.to_bundle(samples, [Event.PM_CYC, Event.PM_LARX])
        assert bundle["PM_CYC"].values == [1000.0, 1001.0, 1002.0]
        assert bundle["PM_LARX"].values == [3.0, 3.0, 3.0]

    def test_uneven_spacing_rejected(self, hpm):
        samples = hpm.sample_all([0, 1, 5])
        with pytest.raises(ValueError):
            HpmStat.to_bundle(samples, [Event.PM_CYC])

    def test_empty_rejected(self, hpm):
        with pytest.raises(ValueError):
            HpmStat.to_bundle([], [Event.PM_CYC])


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        HpmStat(FakeExecutor(), window_interval_s=0.0)
