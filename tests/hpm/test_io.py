"""Tests for hpmstat sample file I/O."""

import io

import pytest

from repro.hpm.counters import CounterBank
from repro.hpm.events import Event
from repro.hpm.hpmstat import HpmSample, HpmStat
from repro.hpm.io import read_samples, round_trip_text, write_samples


class FakeExecutor:
    def execute_window(self, window_index):
        bank = CounterBank()
        bank.add(Event.PM_CYC, 1000 + window_index)
        bank.add(Event.PM_INST_CMPL, 321)
        bank.add(Event.PM_LARX, 5)
        return bank.snapshot()


@pytest.fixture()
def samples():
    hpm = HpmStat(FakeExecutor(), window_interval_s=0.1)
    return hpm.sample_all([0, 1, 2])


@pytest.fixture()
def grouped_samples():
    hpm = HpmStat(FakeExecutor(), window_interval_s=0.1)
    return hpm.sample_group("sync", [5, 6])


class TestRoundTrip:
    def test_counts_preserved(self, samples):
        loaded = round_trip_text(samples)
        assert len(loaded) == len(samples)
        for a, b in zip(samples, loaded):
            assert a.window_index == b.window_index
            assert a.time_s == pytest.approx(b.time_s)
            assert b.snapshot[Event.PM_CYC] == a.snapshot[Event.PM_CYC]
            assert b.snapshot[Event.PM_LARX] == a.snapshot[Event.PM_LARX]

    def test_group_visibility_preserved(self, grouped_samples):
        loaded = round_trip_text(grouped_samples)
        sample = loaded[0]
        assert sample.group_name == "sync"
        assert sample.snapshot[Event.PM_LARX] == 5
        # Events outside the group were written blank and read absent.
        assert Event.PM_DERAT_MISS not in sample.snapshot.counts

    def test_derived_ratios_survive(self, samples):
        loaded = round_trip_text(samples)
        assert loaded[0].snapshot.cpi == samples[0].snapshot.cpi

    def test_file_round_trip(self, samples, tmp_path):
        path = tmp_path / "samples.csv"
        write_samples(samples, path)
        loaded = read_samples(path)
        assert loaded[1].snapshot[Event.PM_CYC] == 1001


class TestErrors:
    def test_empty_write_rejected(self):
        with pytest.raises(ValueError):
            write_samples([], io.StringIO())

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            read_samples(io.StringIO(""))

    def test_missing_meta_column_rejected(self):
        with pytest.raises(ValueError):
            read_samples(io.StringIO("a,b,c\n1,2,3\n"))

    def test_unknown_event_columns_ignored(self):
        text = (
            "window_index,time_s,group,PM_CYC,PM_INST_CMPL,PM_FUTURE_EVENT\n"
            "0,0.0,,100,50,7\n"
        )
        loaded = read_samples(io.StringIO(text))
        assert loaded[0].snapshot.cpi == 2.0


def test_real_samples_round_trip(quick_study):
    samples = quick_study.sample_windows(4, start=900)
    loaded = round_trip_text(samples)
    for a, b in zip(samples, loaded):
        assert dict(a.snapshot.counts) == dict(b.snapshot.counts)
