"""Tests for counter banks and snapshots."""

import pytest

from repro.hpm.counters import CounterBank, CounterSnapshot
from repro.hpm.events import Event


class TestCounterBank:
    def test_add_and_value(self):
        bank = CounterBank()
        bank.add(Event.PM_CYC, 10)
        bank.add(Event.PM_CYC)
        assert bank.value(Event.PM_CYC) == 11

    def test_negative_increment_rejected(self):
        bank = CounterBank()
        with pytest.raises(ValueError):
            bank.add(Event.PM_CYC, -1)

    def test_reset(self):
        bank = CounterBank()
        bank.add(Event.PM_INST_CMPL, 5)
        bank.reset()
        assert bank.value(Event.PM_INST_CMPL) == 0

    def test_snapshot_is_frozen_copy(self):
        bank = CounterBank()
        bank.add(Event.PM_CYC, 3)
        snap = bank.snapshot()
        bank.add(Event.PM_CYC, 100)
        assert snap[Event.PM_CYC] == 3


class TestSnapshotRatios:
    def make(self, **counts):
        return CounterSnapshot(
            counts={Event[k]: v for k, v in counts.items()}
        )

    def test_cpi(self):
        snap = self.make(PM_CYC=300, PM_INST_CMPL=100)
        assert snap.cpi == 3.0

    def test_cpi_zero_instructions(self):
        assert self.make(PM_CYC=300).cpi == 0.0

    def test_speculation_rate(self):
        snap = self.make(PM_INST_DISP=250, PM_INST_CMPL=100)
        assert snap.speculation_rate == 2.5

    def test_l1d_rates(self):
        snap = self.make(
            PM_LD_REF_L1=120, PM_LD_MISS_L1=10, PM_ST_REF_L1=50, PM_ST_MISS_L1=10
        )
        assert snap.l1d_load_miss_rate == pytest.approx(10 / 120)
        assert snap.l1d_store_miss_rate == pytest.approx(0.2)
        assert snap.l1d_miss_rate == pytest.approx(20 / 170)

    def test_branch_rates(self):
        snap = self.make(
            PM_BR_CMPL=100, PM_BR_MPRED_CR=6, PM_BR_INDIRECT=20, PM_BR_MPRED_TA=1
        )
        assert snap.branch_mispredict_rate == pytest.approx(0.06)
        assert snap.indirect_mispredict_rate == pytest.approx(0.05)

    def test_per_instruction(self):
        snap = self.make(PM_INST_CMPL=1000, PM_DERAT_MISS=5)
        assert snap.per_instruction(Event.PM_DERAT_MISS) == pytest.approx(0.005)

    def test_sync_srq_fraction(self):
        snap = self.make(PM_CYC=1000, PM_SYNC_SRQ_CYC=7)
        assert snap.sync_srq_fraction == pytest.approx(0.007)

    def test_merge(self):
        a = self.make(PM_CYC=100, PM_INST_CMPL=50)
        b = self.make(PM_CYC=200, PM_INST_CMPL=50)
        merged = a.merged_with(b)
        assert merged.cpi == 3.0

    def test_restricted_to(self):
        snap = self.make(PM_CYC=100, PM_INST_CMPL=50, PM_LARX=7)
        restricted = snap.restricted_to([Event.PM_CYC, Event.PM_INST_CMPL])
        assert restricted[Event.PM_CYC] == 100
        assert restricted[Event.PM_LARX] == 0
