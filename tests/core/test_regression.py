"""Tests for the CPI regression decomposition.

The decisive validation: the simulator's pipeline charges known
per-event penalties, so regressing real window samples must recover
coefficients close to the configured latencies.
"""

import random

import pytest

from repro.config import PipelineLatencies
from repro.core.regression import DEFAULT_PREDICTORS, decompose_cpi
from repro.hpm.counters import CounterBank, CounterSnapshot
from repro.hpm.events import Event


def synthetic_snapshots(n=60, seed=3):
    """Windows whose cycles follow an exact known linear model."""
    rng = random.Random(seed)
    snaps = []
    for _ in range(n):
        instr = rng.randint(8000, 12000)
        mem = rng.randint(0, 60)
        sync = rng.randint(0, 10)
        cycles = int(0.5 * instr + 250 * mem + 40 * sync)
        bank = CounterBank()
        bank.add(Event.PM_INST_CMPL, instr)
        bank.add(Event.PM_CYC, cycles)
        bank.add(Event.PM_DATA_FROM_MEM, mem)
        bank.add(Event.PM_SYNC_CNT, sync)
        snaps.append(bank.snapshot())
    return snaps


class TestSyntheticRecovery:
    def test_exact_model_recovered(self):
        model = decompose_cpi(
            synthetic_snapshots(),
            predictors=(Event.PM_DATA_FROM_MEM, Event.PM_SYNC_CNT),
        )
        assert model.base_cpi == pytest.approx(0.5, abs=0.02)
        assert model.penalties[Event.PM_DATA_FROM_MEM] == pytest.approx(250, rel=0.05)
        assert model.penalties[Event.PM_SYNC_CNT] == pytest.approx(40, rel=0.1)
        assert model.r_squared > 0.999

    def test_irrelevant_predictor_near_zero(self):
        snaps = []
        for s in synthetic_snapshots():
            counts = dict(s.counts)
            counts[Event.PM_LARX] = 17  # constant: no explanatory power
            snaps.append(CounterSnapshot(counts=counts))
        model = decompose_cpi(
            snaps, predictors=(Event.PM_DATA_FROM_MEM, Event.PM_SYNC_CNT, Event.PM_LARX)
        )
        assert abs(model.penalties[Event.PM_LARX]) < 5.0

    def test_too_few_windows_rejected(self):
        with pytest.raises(ValueError):
            decompose_cpi(synthetic_snapshots(n=3))

    def test_cycle_share_attribution(self):
        model = decompose_cpi(
            synthetic_snapshots(),
            predictors=(Event.PM_DATA_FROM_MEM, Event.PM_SYNC_CNT),
        )
        shares = model.cycle_share(synthetic_snapshots(n=1, seed=9)[0])
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.02)
        assert shares["base"] > 0

    def test_render(self):
        model = decompose_cpi(
            synthetic_snapshots(),
            predictors=(Event.PM_DATA_FROM_MEM,),
        )
        text = "\n".join(model.render_lines())
        assert "base CPI" in text and "PM_DATA_FROM_MEM" in text


class TestSimulatorRecovery:
    """Regression on real simulator windows recovers the configured
    exposed penalties (the ground-truth validation)."""

    @pytest.fixture(scope="class")
    def model(self, quick_study):
        samples = quick_study.sample_windows(120, start=1500)
        return decompose_cpi([s.snapshot for s in samples])

    def test_fit_quality(self, model):
        # Fixed-cycle windows make R^2 uninformative; the prediction
        # error itself must be small.
        assert model.relative_rmse < 0.05

    def test_memory_penalty_recovered(self, model):
        lat = PipelineLatencies()
        estimated = model.penalties[Event.PM_DATA_FROM_MEM]
        assert estimated == pytest.approx(lat.data_from_mem, rel=0.6)
        # And it is clearly the most expensive data event.
        assert estimated > model.penalties[Event.PM_DATA_FROM_L3] * 0.8

    def test_base_cpi_plausible(self, model):
        lat = PipelineLatencies()
        assert model.base_cpi == pytest.approx(lat.base_cpi, rel=1.2)
        assert model.base_cpi > 0

    def test_penalties_non_negative(self, model):
        assert all(b >= 0.0 for b in model.penalties.values())

    def test_default_predictors_all_reported(self, model):
        for event in DEFAULT_PREDICTORS:
            assert event in model.penalties
