"""Smoke tests for the profiling harness and the ``repro profile`` CLI."""

import importlib
import json
import sys

import pytest

from repro.cli import main
from repro.experiments.common import quick_config
from repro.perf.cprofile import profile_windows


class TestDeprecationShim:
    def test_old_import_path_still_works_and_warns(self):
        sys.modules.pop("repro.profiling", None)
        with pytest.warns(DeprecationWarning, match="repro.perf"):
            shim = importlib.import_module("repro.profiling")
        # Same objects, not copies: patching one patches both.
        assert shim.profile_windows is profile_windows


class TestProfileWindows:
    @pytest.fixture(scope="class")
    def report(self):
        return profile_windows(quick_config(), windows=4, top_n=12)

    def test_names_the_hot_kernel(self, report):
        names = report.function_names()
        assert "run_until" in names
        assert "execute_window" in names

    def test_entries_sorted_by_inclusive_time(self, report):
        cums = [e.cumtime for e in report.entries]
        assert cums == sorted(cums, reverse=True)

    def test_totals_populated(self, report):
        assert report.windows == 4
        assert report.total_seconds > 0
        assert report.total_calls > 0
        assert len(report.entries) <= 12

    def test_json_round_trip(self, report):
        payload = json.loads(report.to_json())
        assert payload["windows"] == 4
        assert payload["entries"]
        assert {"function", "file", "line", "ncalls", "tottime", "cumtime"} <= set(
            payload["entries"][0]
        )


class TestProfileCli:
    def test_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--scale",
                "quick",
                "--windows",
                "4",
                "--top",
                "10",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Profile: 4 windows" in out
        payload = json.loads(out_path.read_text())
        functions = [e["function"] for e in payload["entries"]]
        assert "run_until" in functions
