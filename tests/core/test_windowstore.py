"""The campaign-result scatter layer under the sweep batch planner."""

import dataclasses

import pytest

from repro.core import windowstore
from repro.core.windowstore import WindowStore, active_store, store_key
from repro.hpm.counters import CounterSnapshot
from tests.conftest import make_quick_config


def _snap(n: int) -> CounterSnapshot:
    return CounterSnapshot(counts={"PM_CYC": n})


class TestStoreKey:
    def test_stable_for_equal_configs(self):
        cfg = make_quick_config()
        assert store_key(cfg, "hw:0:40") == store_key(
            make_quick_config(), "hw:0:40"
        )

    def test_recipe_and_config_are_both_in_the_key(self):
        cfg = make_quick_config()
        other = dataclasses.replace(cfg, seed=cfg.seed + 1)
        assert store_key(cfg, "hw:0:40") != store_key(cfg, "hw:0:41")
        assert store_key(cfg, "hw:0:40") != store_key(other, "hw:0:40")


class TestWindowStore:
    def test_miss_then_hit_with_counters(self):
        store = WindowStore()
        key = ("cfg", "hw:0:2")
        assert store.get(key) is None
        assert (store.hits, store.misses) == (0, 1)
        store.put(key, [_snap(1), _snap(2)])
        got = store.get(key)
        assert [s.counts for s in got] == [{"PM_CYC": 1}, {"PM_CYC": 2}]
        assert (store.hits, store.misses) == (1, 1)
        assert key in store and len(store) == 1

    def test_put_and_get_copy_the_list(self):
        store = WindowStore()
        key = ("cfg", "hw:0:1")
        payload = [_snap(1)]
        store.put(key, payload)
        payload.append(_snap(2))
        first = store.get(key)
        first.append(_snap(3))
        assert len(store.get(key)) == 1


class TestActiveStore:
    def test_default_is_no_store(self):
        assert active_store() is None

    def test_installed_scopes_and_restores(self):
        outer, inner = WindowStore(), WindowStore()
        with windowstore.installed(outer):
            assert active_store() is outer
            with windowstore.installed(inner):
                assert active_store() is inner
            assert active_store() is outer
        assert active_store() is None

    def test_installed_restores_on_error(self):
        store = WindowStore()
        with pytest.raises(RuntimeError):
            with windowstore.installed(store):
                raise RuntimeError("boom")
        assert active_store() is None
