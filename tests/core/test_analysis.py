"""Tests for the analysis primitives: steady state, smoothing,
profile analysis, vertical profiling."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profile_analysis import analyze_profile, compare_profiles
from repro.core.smoothing import bezier_smooth, moving_average
from repro.core.steady_state import (
    coefficient_of_variation,
    detect_steady_start,
    is_steady,
)
from repro.core.vertical import dominant_period, gc_alignment, gc_indicator
from repro.jvm.gc import GcEvent
from repro.util.timeline import SampleSeries, TimeGrid


def series_of(values, interval=1.0):
    grid = TimeGrid(0.0, interval, len(values))
    return SampleSeries("x", grid, values=list(values))


class TestSteadyState:
    def test_ramp_then_flat(self):
        values = [i / 20.0 for i in range(20)] + [1.0] * 60
        s = series_of(values)
        start = detect_steady_start(s, window=5, tolerance=0.1)
        assert start is not None
        assert 10.0 <= start <= 30.0

    def test_already_steady(self):
        s = series_of([5.0] * 50)
        start = detect_steady_start(s, window=5)
        assert start is not None and start < 10.0
        assert is_steady(s, 10.0)

    def test_never_settles(self):
        values = [float(i) for i in range(60)]  # unbounded ramp
        assert detect_steady_start(series_of(values), window=5) is None

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            detect_steady_start(series_of([1.0] * 5), window=5)

    def test_cov(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) > 0.3
        assert coefficient_of_variation([0.0, 0.0]) == float("inf")


class TestSmoothing:
    def test_moving_average_flattens(self):
        noisy = [0.0, 10.0] * 10
        smooth = moving_average(noisy, 4)
        assert max(smooth[3:-3]) - min(smooth[3:-3]) < 6.0

    def test_moving_average_preserves_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        smooth = moving_average(values, 3)
        assert sum(smooth) / len(smooth) == pytest.approx(3.0, abs=0.4)

    def test_bezier_endpoints_exact(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [0.0, 5.0, -5.0, 1.0]
        sx, sy = bezier_smooth(xs, ys, n_points=30)
        assert sx[0] == xs[0] and sy[0] == ys[0]
        assert sx[-1] == xs[-1] and sy[-1] == ys[-1]

    def test_bezier_within_hull(self):
        xs = list(range(10))
        ys = [float(i % 3) for i in range(10)]
        _, sy = bezier_smooth(xs, ys, n_points=50)
        assert all(min(ys) - 1e-9 <= v <= max(ys) + 1e-9 for v in sy)

    def test_bezier_handles_many_points(self):
        """Log-space Bernstein weights stay finite for large n."""
        n = 400
        xs = list(range(n))
        ys = [math.sin(i / 10.0) for i in range(n)]
        _, sy = bezier_smooth(xs, ys, n_points=20)
        assert all(math.isfinite(v) for v in sy)

    def test_bezier_single_point(self):
        sx, sy = bezier_smooth([1.0], [2.0], n_points=5)
        assert set(sx) == {1.0} and set(sy) == {2.0}

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=60))
    def test_bezier_bounded_by_data(self, ys):
        xs = list(range(len(ys)))
        _, sy = bezier_smooth(xs, ys, n_points=15)
        assert all(min(ys) - 1e-6 <= v <= max(ys) + 1e-6 for v in sy)


class TestProfileAnalysis:
    def test_flat_profile_detected(self):
        analysis = analyze_profile([1.0] * 1000)
        assert analysis.is_flat
        assert not analysis.ninety_ten_applies
        assert analysis.concentration < 0.1
        assert analysis.items_for_half == 500

    def test_hot_profile_detected(self):
        weights = [1000.0] + [0.1] * 99
        analysis = analyze_profile(weights)
        assert not analysis.is_flat
        assert analysis.ninety_ten_applies
        assert analysis.hottest_share > 0.9

    def test_paper_shape(self):
        """224-of-8500-for-50% with hottest <1% classifies as flat."""
        import random

        from repro.jvm.methods import flat_profile_weights

        weights = flat_profile_weights(8500, 224, 0.5, random.Random(0))
        analysis = analyze_profile(weights)
        assert analysis.is_flat
        assert analysis.hottest_share < 0.01
        assert 150 <= analysis.items_for_half <= 300

    def test_compare_profiles(self):
        flat = analyze_profile([1.0] * 100)
        hot = analyze_profile([100.0] + [1.0] * 99)
        rows = compare_profiles(flat, hot)
        assert rows[0][1] < rows[0][2]  # hottest share differs

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            analyze_profile([])
        with pytest.raises(ValueError):
            analyze_profile([0.0, 0.0])


class TestVertical:
    def make_gc_events(self, period=25.0, pause_ms=300.0, n=5):
        return [
            GcEvent(
                start_time_s=10.0 + i * period,
                mark_ms=pause_ms * 0.8,
                sweep_ms=pause_ms * 0.2,
                compact_ms=0.0,
                freed_bytes=1,
                live_bytes_after=1,
                used_bytes_after=1,
                dark_matter_bytes=0,
                compacted=False,
            )
            for i in range(n)
        ]

    def test_gc_indicator_covers_pauses(self):
        events = self.make_gc_events()
        times = [i * 0.1 for i in range(1500)]
        indicator = gc_indicator(events, times, 0.1)
        assert max(indicator) == pytest.approx(1.0)
        covered = sum(indicator) * 0.1
        expected = 5 * 0.3
        assert covered == pytest.approx(expected, rel=0.1)

    def test_gc_alignment_positive_for_gc_elevated_series(self):
        gc_fracs = [0.0] * 40 + [1.0] * 10
        values = [1.0] * 40 + [5.0] * 10
        alignment = gc_alignment(values, gc_fracs)
        assert alignment.r_with_gc > 0.9
        assert alignment.gc_ratio == pytest.approx(5.0)

    def test_gc_alignment_handles_missing_pools(self):
        alignment = gc_alignment([1.0, 2.0], [0.0, 0.0])
        assert alignment.mean_in_gc is None
        assert alignment.gc_ratio is None

    def test_dominant_period_finds_cycle(self):
        period = 40
        values = [1.0 if i % period < 3 else 0.0 for i in range(400)]
        found = dominant_period(values, 1.0, 20.0, 80.0)
        assert found is not None
        assert found[0] == pytest.approx(period, abs=1.0)
        assert found[1] > 0.5

    def test_dominant_period_range_too_small(self):
        assert dominant_period([1.0, 2.0], 1.0, 5.0, 6.0) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            gc_alignment([1.0], [0.0, 1.0])


class TestAttribution:
    def test_ranking_by_strength(self):
        from repro.core.vertical import attribute_series

        target = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        ranked = attribute_series(
            target,
            {
                "strong": [1.1, 2.0, 3.2, 3.9, 5.1, 6.0],
                "weak": [2.0, 1.0, 2.0, 1.0, 2.0, 1.0],
            },
        )
        assert ranked[0].factor == "strong"
        assert ranked[0].strength == "strong"
        assert abs(ranked[1].r) < 0.5

    def test_length_mismatch_raises(self):
        import pytest as _pytest

        from repro.core.vertical import attribute_series

        with _pytest.raises(ValueError):
            attribute_series([1.0, 2.0], {"f": [1.0]})

    def test_strength_labels(self):
        from repro.core.vertical import Attribution

        assert Attribution("x", 0.9).strength == "strong"
        assert Attribution("x", -0.45).strength == "moderate"
        assert Attribution("x", 0.1).strength == "weak"
