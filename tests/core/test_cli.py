"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        actions = [
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        ]
        commands = set(actions[0].choices)
        assert commands == {
            "characterize",
            "figure",
            "tables",
            "whatif",
            "scaling",
            "tuning",
            "cluster",
            "resilience",
            "warmup",
            "heap-sweep",
            "methodology",
            "objprof",
            "compare",
            "save-config",
            "reproduce-all",
            "profile",
            "bench",
            "perf-diff",
            "perf-gate",
            "conform",
            "trace",
            "cache",
            "serve",
            "load",
            "service-index",
        }

    def test_scale_flag_after_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "3", "--scale", "bench"])
        assert args.scale == "bench"
        assert args.number == 3

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_all_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "reproduce-all",
                "--jobs",
                "4",
                "--only",
                "fig02_throughput,fig03_gc",
                "--only",
                "tab_locking",
                "--stats-json",
                "stats.json",
            ]
        )
        assert args.jobs == 4
        assert args.only == ["fig02_throughput,fig03_gc", "tab_locking"]
        assert args.stats_json == "stats.json"

    def test_reproduce_all_defaults_serial(self):
        args = build_parser().parse_args(["reproduce-all"])
        assert args.jobs == 1
        assert args.only is None
        assert args.resume is None
        assert args.task_timeout is None
        assert args.no_timing is False

    def test_reproduce_all_crash_safety_flags(self):
        args = build_parser().parse_args(
            [
                "reproduce-all",
                "--resume",
                "sweep.jsonl",
                "--task-timeout",
                "120",
                "--no-timing",
            ]
        )
        assert args.resume == "sweep.jsonl"
        assert args.task_timeout == 120.0
        assert args.no_timing is True

    def test_cache_actions_parse(self):
        parser = build_parser()
        for action in ("verify", "gc", "stats"):
            args = parser.parse_args(["cache", action, "--dir", "/tmp/c"])
            assert args.action == action
            assert args.dir == "/tmp/c"
        with pytest.raises(SystemExit):
            parser.parse_args(["cache", "defrag"])


class TestExecution:
    def test_figure_command_runs(self, capsys):
        assert main(["figure", "3", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Garbage Collection" in out
        assert "[ok]" in out

    def test_unknown_figure_number(self, capsys):
        assert main(["figure", "99"]) == 2
        assert "no figure 99" in capsys.readouterr().out

    def test_compare_command_runs(self, capsys):
        assert main(["compare", "--scale", "quick"]) == 0
        assert "Simple Java Benchmarks" in capsys.readouterr().out

    def test_objprof_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["objprof", "--scale", "quick", "--windows", "8",
             "--top", "3", "--no-validate"]
        )
        assert (args.windows, args.top, args.no_validate) == (8, 3, True)

    def test_objprof_command_runs(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "sites.json"
        code = main(
            ["objprof", "--scale", "quick", "--windows", "8",
             "--no-validate", "--json", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Object-Centric Heap Profile" in out
        assert "[ok]" in out
        doc = json.loads(out_path.read_text())
        assert doc["ranking"]
        assert doc["reconciliation"] == {
            "fresh": True, "dark": True, "live": True
        }

    def test_reproduce_all_unknown_only_fails_fast(self, capsys):
        # A typo must not render as a clean empty sweep.
        assert main(["reproduce-all", "--scale", "quick", "--only", "fig99_nope"]) == 2
        out = capsys.readouterr().out
        assert "fig99_nope" in out
        assert "valid names" in out

    def test_reproduce_all_subset_with_stats(self, capsys, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        code = main(
            [
                "reproduce-all",
                "--scale",
                "quick",
                "--only",
                "fig03_gc",
                "--stats-json",
                str(stats_path),
            ]
        )
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert set(stats["per_experiment"]) == {"fig03_gc"}
        assert {"wall_clock_s", "jobs", "cache_hits", "cache_misses"} <= set(stats)

    def test_cache_requires_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_CACHE_DIR", raising=False)
        assert main(["cache", "verify"]) == 2
        assert "REPRO_RUN_CACHE_DIR" in capsys.readouterr().out

    def test_cache_verify_gc_cycle(self, capsys, tmp_path, monkeypatch):
        from repro.runcache import RunCache
        from repro.workload.presets import jas2004

        cache_dir = tmp_path / "cache"
        RunCache(disk_dir=cache_dir).get_or_run(jas2004(duration_s=120.0, seed=5))
        monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(cache_dir))

        assert main(["cache", "verify"]) == 0
        assert "CLEAN" in capsys.readouterr().out

        victim = sorted(cache_dir.glob("*.pkl"))[0]
        victim.write_bytes(b"rotten")
        assert main(["cache", "verify"]) == 1
        assert "DIRTY" in capsys.readouterr().out

        assert main(["cache", "stats"]) == 0
        assert "quarantined: 1" in capsys.readouterr().out

        assert main(["cache", "gc"]) == 0
        assert "removed 1 quarantined" in capsys.readouterr().out
        assert main(["cache", "verify"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_save_and_reuse_config(self, capsys, tmp_path):
        path = tmp_path / "manifest.json"
        assert main(["save-config", str(path), "--seed", "123"]) == 0
        assert path.exists()
        # The manifest drives another command.
        assert main(["figure", "3", "--config", str(path)]) == 0
        assert "Garbage Collection" in capsys.readouterr().out
