"""Determinism of the parallel per-group correlation campaign.

Each counter group is measured on its own independently seeded core
(RNG forks named after the group, derived statelessly from the config
seed), so fanning the groups over a process pool must produce a report
byte-identical to running them serially — that equivalence is the
contract that makes ``--jobs`` legal, and it is asserted here.
"""

import pytest

from repro.core.correlation import run_group_campaign
from repro.experiments.common import quick_config
from repro.hpm.groups import default_catalog

#: Multi-process campaign determinism — full-CI tier, not tier-1.
pytestmark = pytest.mark.slow


def _canonical(report):
    """A stable, fully-ordered rendering of every field of the report."""
    return (
        tuple(
            (e.name, c.r, c.group, c.n_samples)
            for e, c in sorted(
                report.correlations.items(), key=lambda kv: kv[0].name
            )
        ),
        report.r_target_miss_vs_icache_miss,
        report.r_speculation_vs_l1_miss,
        report.r_branches_vs_target_miss,
        report.r_cond_miss_vs_branches,
    )


@pytest.fixture(scope="module")
def config():
    return quick_config(seed=2007)


@pytest.fixture(scope="module")
def serial_report(config):
    return run_group_campaign(config, windows_per_group=10, jobs=1)


class TestParallelMatchesSerial:
    def test_byte_identical(self, config, serial_report):
        parallel = run_group_campaign(config, windows_per_group=10, jobs=3)
        assert _canonical(parallel) == _canonical(serial_report)

    def test_repeatable(self, config, serial_report):
        again = run_group_campaign(config, windows_per_group=10, jobs=1)
        assert _canonical(again) == _canonical(serial_report)


class TestCampaignShape:
    def test_covers_all_groups(self, serial_report):
        groups = {c.group for c in serial_report.correlations.values()}
        catalog_names = {g.name for g in default_catalog()}
        assert groups <= catalog_names
        # Every group contributed at least one non-base event.
        assert len(groups) >= 3

    def test_special_pairs_populated(self, serial_report):
        assert serial_report.r_target_miss_vs_icache_miss is not None
        assert serial_report.r_speculation_vs_l1_miss is not None
        assert serial_report.r_branches_vs_target_miss is not None
        assert serial_report.r_cond_miss_vs_branches is not None

    def test_sane_r_values(self, serial_report):
        for corr in serial_report.correlations.values():
            assert -1.0 <= corr.r <= 1.0
            assert corr.n_samples == 10

    def test_minimum_windows_enforced(self, config):
        with pytest.raises(ValueError):
            run_group_campaign(config, windows_per_group=2)
