"""Tests for the content-addressed run cache and ``simulate()``."""

import dataclasses
import pickle

import pytest

from repro.config import FaultConfig, FaultEvent
from repro.experiments.common import simulate
from repro.runcache import (
    CACHE_MAGIC,
    QUARANTINE_DIRNAME,
    CacheIntegrityError,
    RunCache,
    cache_dir_stats,
    config_key,
    decode_entry,
    encode_entry,
    gc_cache_dir,
    verify_cache_dir,
    verify_entry_bytes,
)
from repro.util.rng import RngFactory
from repro.workload.presets import jas2004
from repro.workload.sut import SystemUnderTest


def small_config(seed=5):
    return jas2004(duration_s=120.0, seed=seed)


def assert_bit_identical(a, b):
    """Two RunResults are the same run, field by field."""
    assert a.timeline.records == b.timeline.records
    assert a.gc_events == b.gc_events
    assert a.responses == b.responses
    assert a.rejected == b.rejected
    assert a.db_hit_ratio == b.db_hit_ratio
    assert a.disk_utilization == b.disk_utilization
    assert a.disk_mean_queue == b.disk_mean_queue
    assert a.final_heap_used == b.final_heap_used
    assert a.final_dark_matter == b.final_dark_matter
    assert a.resilience == b.resilience


class TestConfigKey:
    def test_stable_for_equal_configs(self):
        assert config_key(small_config()) == config_key(small_config())

    def test_seed_changes_key(self):
        assert config_key(small_config(seed=5)) != config_key(small_config(seed=6))

    def test_rng_fork_changes_key(self):
        cfg = small_config()
        assert config_key(cfg) != config_key(cfg, rng_fork="workload")

    def test_any_config_field_changes_key(self):
        cfg = small_config()
        faulted = dataclasses.replace(
            cfg,
            faults=FaultConfig(
                events=(
                    FaultEvent(
                        kind="db_slowdown",
                        start_s=10.0,
                        duration_s=10.0,
                        magnitude=2.0,
                    ),
                )
            ),
        )
        assert config_key(cfg) != config_key(faulted)


class TestMemoryTier:
    def test_hit_returns_same_object_and_counts(self):
        cache = RunCache()
        cfg = small_config()
        first = cache.get_or_run(cfg)
        second = cache.get_or_run(cfg)
        assert second is first
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_different_forks_are_different_entries(self):
        cache = RunCache()
        cfg = small_config()
        plain = cache.get_or_run(cfg)
        forked = cache.get_or_run(cfg, rng_fork="workload")
        assert cache.stats.misses == 2
        # Different RNG namespaces draw different randomness.
        assert plain.responses != forked.responses

    def test_put_seeds_the_memory_tier(self, tmp_path):
        # The batch planner scatters worker-computed results back into
        # the parent cache; the next get_or_run must be a pure hit.
        cfg = small_config()
        result = RunCache().get_or_run(cfg, rng_fork="workload")
        cache = RunCache(disk_dir=tmp_path)
        key = cache.put(cfg, result, rng_fork="workload")
        assert key == config_key(cfg, "workload")
        assert cache.get_or_run(cfg, rng_fork="workload") is result
        assert cache.stats.hits == 1 and cache.stats.misses == 0
        # Memory tier only: put never writes the disk tier.
        assert list(tmp_path.iterdir()) == []


class TestDiskTier:
    def test_shared_across_cache_instances(self, tmp_path):
        cfg = small_config()
        writer = RunCache(disk_dir=tmp_path)
        original = writer.get_or_run(cfg)
        reader = RunCache(disk_dir=tmp_path)
        restored = reader.get_or_run(cfg)
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0
        assert_bit_identical(restored, original)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cfg = small_config()
        key = config_key(cfg)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        cache = RunCache(disk_dir=tmp_path)
        result = cache.get_or_run(cfg)
        assert cache.stats.misses == 1
        assert_bit_identical(result, SystemUnderTest(cfg).run())

    def test_clear_drops_memory_but_keeps_disk(self, tmp_path):
        cache = RunCache(disk_dir=tmp_path)
        cfg = small_config()
        cache.get_or_run(cfg)
        cache.clear()
        assert len(cache) == 0
        cache.get_or_run(cfg)
        assert cache.stats.disk_hits == 1


class TestDeterminism:
    """The satellite guarantee: caching never changes a run."""

    def test_cached_equals_uncached(self):
        cfg = small_config()
        cached = RunCache().get_or_run(cfg)
        fresh = SystemUnderTest(cfg).run()
        assert_bit_identical(cached, fresh)

    def test_rng_fork_matches_inline_fork(self):
        """The cache rebuilds exactly the factory the characterization
        pipeline used to construct inline."""
        cfg = small_config()
        cached = RunCache().get_or_run(cfg, rng_fork="workload")
        inline = SystemUnderTest(cfg, RngFactory(cfg.seed).fork("workload")).run()
        assert_bit_identical(cached, inline)

    def test_simulate_uses_given_cache(self):
        cache = RunCache()
        cfg = small_config()
        a = simulate(cfg, cache=cache)
        b = simulate(cfg, cache=cache)
        assert a is b
        assert cache.stats.hits == 1


class TestEnvelope:
    def test_round_trip(self):
        result = SystemUnderTest(small_config()).run()
        blob = encode_entry(result)
        assert blob.startswith(CACHE_MAGIC)
        restored = decode_entry(blob)
        assert_bit_identical(restored, result)

    def test_missing_magic_rejected(self):
        with pytest.raises(CacheIntegrityError):
            verify_entry_bytes(pickle.dumps({"raw": "legacy entry"}))

    def test_truncated_header_rejected(self):
        with pytest.raises(CacheIntegrityError):
            verify_entry_bytes(CACHE_MAGIC + b"deadbeef\n" + b"body")

    def test_checksum_mismatch_rejected(self):
        blob = bytearray(encode_entry(SystemUnderTest(small_config()).run()))
        blob[-1] ^= 0x01
        with pytest.raises(CacheIntegrityError):
            verify_entry_bytes(bytes(blob))

    def test_empty_blob_rejected(self):
        with pytest.raises(CacheIntegrityError):
            verify_entry_bytes(b"")


class TestSelfHealing:
    def test_bit_flip_quarantined_and_recomputed(self, tmp_path):
        cfg = small_config()
        writer = RunCache(disk_dir=tmp_path)
        original = writer.get_or_run(cfg)
        entry = tmp_path / f"{config_key(cfg)}.pkl"
        blob = bytearray(entry.read_bytes())
        blob[len(blob) * 3 // 4] ^= 0x40
        entry.write_bytes(bytes(blob))

        reader = RunCache(disk_dir=tmp_path)
        healed = reader.get_or_run(cfg)
        assert reader.stats.quarantined == 1
        assert reader.stats.disk_hits == 0
        assert reader.stats.misses == 1
        assert_bit_identical(healed, original)
        # The bad bytes were parked, and the recompute re-stored a
        # valid entry in place.
        assert (tmp_path / QUARANTINE_DIRNAME / entry.name).exists()
        verify_entry_bytes(entry.read_bytes())

    def test_legacy_raw_pickle_quarantined_as_schema_drift(self, tmp_path):
        cfg = small_config()
        key = config_key(cfg)
        result = SystemUnderTest(cfg).run()
        # A pre-envelope cache entry: a bare pickle, no magic/checksum.
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps(result))
        cache = RunCache(disk_dir=tmp_path)
        cache.get_or_run(cfg)
        assert cache.stats.quarantined == 1
        assert (tmp_path / QUARANTINE_DIRNAME / f"{key}.pkl").exists()

    def test_unwritable_disk_dir_fails_soft(self, tmp_path):
        # Point disk_dir *under a file* so mkdir/replace must fail —
        # works even when the test runs as root (chmod 0 would not).
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        cache = RunCache(disk_dir=blocker / "cache")
        cfg = small_config()
        result = cache.get_or_run(cfg)
        assert result is not None
        assert cache.stats.write_errors == 1
        assert not cache._disk_writable
        # Later stores skip the dead tier silently (no new errors).
        cache.get_or_run(small_config(seed=6))
        assert cache.stats.write_errors == 1
        # Memory tier still serves.
        assert cache.get_or_run(cfg) is result
        assert cache.stats.hits == 1

    def test_stats_snapshot_tracks_integrity_counters(self, tmp_path):
        cfg = small_config()
        RunCache(disk_dir=tmp_path).get_or_run(cfg)
        entry = tmp_path / f"{config_key(cfg)}.pkl"
        entry.write_bytes(b"garbage")
        cache = RunCache(disk_dir=tmp_path)
        before = cache.stats.snapshot()
        cache.get_or_run(cfg)
        delta = cache.stats.since(before)
        assert delta.quarantined == 1
        assert delta.misses == 1


class TestCacheDirMaintenance:
    def _populate(self, tmp_path, n=2):
        for seed in range(n):
            RunCache(disk_dir=tmp_path).get_or_run(small_config(seed=seed))

    def test_verify_clean_dir(self, tmp_path):
        self._populate(tmp_path)
        report = verify_cache_dir(tmp_path)
        assert report.passed
        assert report.entries_ok == 2
        assert report.bytes_ok > 0
        assert "CLEAN" in "\n".join(report.render_lines())

    def test_verify_quarantines_corrupt_entries(self, tmp_path):
        self._populate(tmp_path)
        victim = sorted(tmp_path.glob("*.pkl"))[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(bytes(blob))

        report = verify_cache_dir(tmp_path)
        assert not report.passed
        assert report.corrupt == [victim.name]
        assert report.entries_ok == 1
        assert not victim.exists()
        # A second scan finds the live entries clean but still reports
        # the quarantine backlog: dirty until gc.
        again = verify_cache_dir(tmp_path)
        assert again.corrupt == []
        assert again.quarantined == [victim.name]
        assert not again.passed

    def test_gc_clears_quarantine_and_tmp_strays(self, tmp_path):
        self._populate(tmp_path, n=1)
        victim = sorted(tmp_path.glob("*.pkl"))[0]
        victim.write_bytes(b"rot")
        verify_cache_dir(tmp_path)
        (tmp_path / "dead-writer.tmp").write_bytes(b"partial")

        removed = gc_cache_dir(tmp_path)
        assert removed == {"quarantined": 1, "tmp": 1}
        assert verify_cache_dir(tmp_path).passed
        assert not list(tmp_path.glob("*.tmp"))

    def test_stats_counts(self, tmp_path):
        self._populate(tmp_path)
        victim = sorted(tmp_path.glob("*.pkl"))[0]
        victim.write_bytes(b"rot")
        verify_cache_dir(tmp_path)
        (tmp_path / "stray.tmp").write_bytes(b"x")
        stats = cache_dir_stats(tmp_path)
        assert stats["entries"] == 1
        assert stats["quarantined"] == 1
        assert stats["quarantine_bytes"] == 3
        assert stats["tmp_strays"] == 1
        assert stats["bytes"] > 0

    def test_empty_or_missing_dir(self, tmp_path):
        assert verify_cache_dir(tmp_path / "nope").passed
        assert gc_cache_dir(tmp_path / "nope") == {"quarantined": 0, "tmp": 0}
        assert cache_dir_stats(tmp_path / "nope")["entries"] == 0
