"""Tests for the content-addressed run cache and ``simulate()``."""

import dataclasses

from repro.config import FaultConfig, FaultEvent
from repro.experiments.common import simulate
from repro.runcache import RunCache, config_key
from repro.util.rng import RngFactory
from repro.workload.presets import jas2004
from repro.workload.sut import SystemUnderTest


def small_config(seed=5):
    return jas2004(duration_s=120.0, seed=seed)


def assert_bit_identical(a, b):
    """Two RunResults are the same run, field by field."""
    assert a.timeline.records == b.timeline.records
    assert a.gc_events == b.gc_events
    assert a.responses == b.responses
    assert a.rejected == b.rejected
    assert a.db_hit_ratio == b.db_hit_ratio
    assert a.disk_utilization == b.disk_utilization
    assert a.disk_mean_queue == b.disk_mean_queue
    assert a.final_heap_used == b.final_heap_used
    assert a.final_dark_matter == b.final_dark_matter
    assert a.resilience == b.resilience


class TestConfigKey:
    def test_stable_for_equal_configs(self):
        assert config_key(small_config()) == config_key(small_config())

    def test_seed_changes_key(self):
        assert config_key(small_config(seed=5)) != config_key(small_config(seed=6))

    def test_rng_fork_changes_key(self):
        cfg = small_config()
        assert config_key(cfg) != config_key(cfg, rng_fork="workload")

    def test_any_config_field_changes_key(self):
        cfg = small_config()
        faulted = dataclasses.replace(
            cfg,
            faults=FaultConfig(
                events=(
                    FaultEvent(
                        kind="db_slowdown",
                        start_s=10.0,
                        duration_s=10.0,
                        magnitude=2.0,
                    ),
                )
            ),
        )
        assert config_key(cfg) != config_key(faulted)


class TestMemoryTier:
    def test_hit_returns_same_object_and_counts(self):
        cache = RunCache()
        cfg = small_config()
        first = cache.get_or_run(cfg)
        second = cache.get_or_run(cfg)
        assert second is first
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_different_forks_are_different_entries(self):
        cache = RunCache()
        cfg = small_config()
        plain = cache.get_or_run(cfg)
        forked = cache.get_or_run(cfg, rng_fork="workload")
        assert cache.stats.misses == 2
        # Different RNG namespaces draw different randomness.
        assert plain.responses != forked.responses


class TestDiskTier:
    def test_shared_across_cache_instances(self, tmp_path):
        cfg = small_config()
        writer = RunCache(disk_dir=tmp_path)
        original = writer.get_or_run(cfg)
        reader = RunCache(disk_dir=tmp_path)
        restored = reader.get_or_run(cfg)
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0
        assert_bit_identical(restored, original)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cfg = small_config()
        key = config_key(cfg)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        cache = RunCache(disk_dir=tmp_path)
        result = cache.get_or_run(cfg)
        assert cache.stats.misses == 1
        assert_bit_identical(result, SystemUnderTest(cfg).run())

    def test_clear_drops_memory_but_keeps_disk(self, tmp_path):
        cache = RunCache(disk_dir=tmp_path)
        cfg = small_config()
        cache.get_or_run(cfg)
        cache.clear()
        assert len(cache) == 0
        cache.get_or_run(cfg)
        assert cache.stats.disk_hits == 1


class TestDeterminism:
    """The satellite guarantee: caching never changes a run."""

    def test_cached_equals_uncached(self):
        cfg = small_config()
        cached = RunCache().get_or_run(cfg)
        fresh = SystemUnderTest(cfg).run()
        assert_bit_identical(cached, fresh)

    def test_rng_fork_matches_inline_fork(self):
        """The cache rebuilds exactly the factory the characterization
        pipeline used to construct inline."""
        cfg = small_config()
        cached = RunCache().get_or_run(cfg, rng_fork="workload")
        inline = SystemUnderTest(cfg, RngFactory(cfg.seed).fork("workload")).run()
        assert_bit_identical(cached, inline)

    def test_simulate_uses_given_cache(self):
        cache = RunCache()
        cfg = small_config()
        a = simulate(cfg, cache=cache)
        b = simulate(cfg, cache=cache)
        assert a is b
        assert cache.stats.hits == 1
