"""Tests for the CPI correlation study and its group constraints."""

import pytest

from repro.core.correlation import CpiCorrelationStudy, correlation_matrix
from repro.hpm.counters import CounterBank
from repro.hpm.events import Event
from repro.hpm.hpmstat import HpmStat


class SyntheticExecutor:
    """A machine whose CPI is driven by one synthetic event.

    Windows have fixed cycles; a per-window intensity drives both the
    event count and the stall cycles, so the event must correlate
    positively with CPI, while a throughput-proportional event must
    correlate negatively.
    """

    CYCLES = 100_000

    def execute_window(self, window_index):
        intensity = 1.0 + 0.5 * ((window_index * 2654435761) % 97) / 97.0
        stall_cycles = 30_000 * intensity
        instructions = int((self.CYCLES - stall_cycles) / 0.5)
        bank = CounterBank()
        bank.add(Event.PM_CYC, self.CYCLES)
        bank.add(Event.PM_INST_CMPL, instructions)
        bank.add(Event.PM_INST_DISP, instructions * 2)
        bank.add(Event.PM_CYC_INST_CMPL, int(instructions * 0.5))
        # Stall-causing event: scales with intensity.
        bank.add(Event.PM_SYNC_CNT, int(100 * intensity))
        bank.add(Event.PM_SYNC_SRQ_CYC, int(1000 * intensity))
        # Throughput-proportional event.
        bank.add(Event.PM_LARX, instructions // 600)
        bank.add(Event.PM_STCX, instructions // 600)
        return bank.snapshot()


@pytest.fixture()
def hpm():
    return HpmStat(SyntheticExecutor(), window_interval_s=0.1)


class TestCpiCorrelationStudy:
    def test_stall_event_positive_throughput_event_negative(self, hpm):
        report = CpiCorrelationStudy(hpm).run(windows_per_group=40)
        assert report.r_of(Event.PM_SYNC_CNT) > 0.9
        assert report.r_of(Event.PM_LARX) < -0.9

    def test_cyc_inst_cmpl_negative(self, hpm):
        report = CpiCorrelationStudy(hpm).run(windows_per_group=40)
        assert report.r_of(Event.PM_CYC_INST_CMPL) < -0.9

    def test_groups_measured_on_disjoint_windows(self, hpm):
        executor = SyntheticExecutor()
        calls = []
        original = executor.execute_window

        def tracking(idx):
            calls.append(idx)
            return original(idx)

        executor.execute_window = tracking
        stat = HpmStat(executor, 0.1)
        CpiCorrelationStudy(stat).run(windows_per_group=10, start_window=100)
        n_groups = len(stat.catalog)
        assert len(calls) == n_groups * 10
        assert len(set(calls)) == len(calls)  # no window reused
        assert min(calls) == 100

    def test_correlations_keyed_by_event(self, hpm):
        report = CpiCorrelationStudy(hpm).run(windows_per_group=20)
        for event, corr in report.correlations.items():
            assert corr.event is event
            assert -1.0 <= corr.r <= 1.0
            assert corr.n_samples == 20

    def test_base_events_not_self_correlated(self, hpm):
        report = CpiCorrelationStudy(hpm).run(windows_per_group=20)
        assert Event.PM_CYC not in report.correlations
        assert Event.PM_INST_CMPL not in report.correlations

    def test_bars_sorted_descending(self, hpm):
        report = CpiCorrelationStudy(hpm).run(windows_per_group=20)
        values = [r for _, r in report.bars()]
        assert values == sorted(values, reverse=True)

    def test_strongest(self, hpm):
        report = CpiCorrelationStudy(hpm).run(windows_per_group=20)
        top = report.strongest(3)
        assert len(top) == 3
        assert abs(top[0].r) >= abs(top[1].r) >= abs(top[2].r)

    def test_minimum_windows_enforced(self, hpm):
        with pytest.raises(ValueError):
            CpiCorrelationStudy(hpm).run(windows_per_group=2)

    def test_special_pairs_populated(self, hpm):
        report = CpiCorrelationStudy(hpm).run(windows_per_group=20)
        assert report.r_target_miss_vs_icache_miss is not None
        assert report.r_speculation_vs_l1_miss is not None
        assert report.r_branches_vs_target_miss is not None
        assert report.r_cond_miss_vs_branches is not None


class TestCorrelationMatrix:
    def test_all_pairs(self):
        cols = {"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0], "c": [3.0, 2.0, 1.0]}
        matrix = correlation_matrix(cols)
        assert matrix[("a", "b")] == pytest.approx(1.0)
        assert matrix[("a", "c")] == pytest.approx(-1.0)
        assert len(matrix) == 3
