"""Engine selection and the vector batch realization of the sweep.

The window-execution engine (:mod:`repro.cpu.engine`) travels through
``$REPRO_ENGINE``: ``reference`` swaps the pinned core into the
characterization, ``vector`` reroutes ``sample_windows`` (and the
Figure 10 campaign) onto the columnar batch engine.  The batch sweep
is a *different realization* — per-window RNG forks from a shared warm
snapshot instead of one continuous core — so the equivalence contract
is distributional: the KS and Mann-Whitney tests here are the guard
the ISSUE's bit-exactness promise delegates to for the float path.
"""

import pytest

from repro.core.characterization import Characterization
from repro.cpu.core_model import CoreModel
from repro.cpu.engine import (
    ENGINES,
    default_engine,
    resolve_engine,
    set_default_engine,
)
from repro.cpu.reference import ReferenceCoreModel
from repro.experiments.common import quick_config
from repro.util.stats import ks_2samp, mann_whitney_u

N_WINDOWS = 40


@pytest.fixture(autouse=True)
def _clean_engine(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)


class TestEngineRegistry:
    def test_default_is_fused(self):
        assert default_engine() == "fused"

    def test_resolve_normalizes_and_validates(self):
        assert resolve_engine(None) == "fused"
        assert resolve_engine(" Vector ") == "vector"
        with pytest.raises(ValueError):
            resolve_engine("turbo")

    def test_env_round_trip(self):
        for engine in ENGINES:
            set_default_engine(engine)
            assert default_engine() == engine
        set_default_engine(None)
        assert default_engine() == "fused"


class TestCoreResolution:
    def test_reference_engine_builds_reference_core(self):
        set_default_engine("reference")
        study = Characterization(quick_config())
        assert type(study.core) is ReferenceCoreModel

    def test_fused_engine_builds_stock_core(self):
        study = Characterization(quick_config())
        assert type(study.core) is CoreModel

    def test_explicit_rebinding_wins_over_engine(self):
        class Pinned(Characterization):
            core_model_cls = ReferenceCoreModel

        study = Pinned(quick_config())
        assert type(study.core) is ReferenceCoreModel
        set_default_engine("reference")
        assert Pinned(quick_config())._resolved_core_model_cls() is (
            ReferenceCoreModel
        )

    def test_vector_falls_back_serially_for_ineligible_core(self):
        # A reference-pinned study is ineligible for the batch engine;
        # the vector dispatch must degrade to the serial loop, not die.
        class Pinned(Characterization):
            core_model_cls = ReferenceCoreModel

        set_default_engine("vector")
        samples = Pinned(quick_config()).sample_windows(4)
        assert len(samples) == 4


@pytest.fixture(scope="module")
def serial_and_vector_sweeps():
    """CPI series of the same sweep under both realizations."""
    cfg = quick_config()
    serial = Characterization(cfg).sample_windows(N_WINDOWS)
    try:
        set_default_engine("vector")
        vector = Characterization(cfg).sample_windows(N_WINDOWS)
    finally:
        set_default_engine(None)
    return serial, vector


class TestVectorSweep:
    def test_sample_metadata_matches_serial(self, serial_and_vector_sweeps):
        serial, vector = serial_and_vector_sweeps
        assert len(vector) == len(serial) == N_WINDOWS
        for s, v in zip(serial, vector):
            assert v.window_index == s.window_index
            assert v.time_s == s.time_s
            assert v.group_name is None
            assert v.snapshot.instructions > 0

    def test_cpi_distribution_equivalent(self, serial_and_vector_sweeps):
        serial, vector = serial_and_vector_sweeps
        cpi_s = [s.snapshot.cpi for s in serial]
        cpi_v = [v.snapshot.cpi for v in vector]
        ks = ks_2samp(cpi_s, cpi_v)
        assert ks.p_value > 0.01, f"CPI distributions diverged: {ks}"
        mw = mann_whitney_u(cpi_s, cpi_v)
        assert 0.01 < mw.p_greater < 0.99, f"CPI stochastically shifted: {mw}"

    def test_miss_rate_distribution_equivalent(self, serial_and_vector_sweeps):
        serial, vector = serial_and_vector_sweeps
        miss_s = [s.snapshot.l1d_miss_rate for s in serial]
        miss_v = [v.snapshot.l1d_miss_rate for v in vector]
        ks = ks_2samp(miss_s, miss_v)
        assert ks.p_value > 0.01, f"L1D miss-rate distributions diverged: {ks}"

    def test_vector_sweep_is_deterministic(self, serial_and_vector_sweeps):
        _, vector = serial_and_vector_sweeps
        cfg = quick_config()
        try:
            set_default_engine("vector")
            again = Characterization(cfg).sample_windows(N_WINDOWS)
        finally:
            set_default_engine(None)
        for a, b in zip(vector, again):
            assert dict(a.snapshot.counts) == dict(b.snapshot.counts)


@pytest.mark.slow
def test_batched_correlation_campaign_matches_serial_shape():
    """The vector Figure 10 campaign: same groups, same special pairs,
    correlations in range, snapshots restricted to their group."""
    from repro.core.correlation import (
        run_group_campaign,
        run_group_campaign_batched,
    )

    cfg = quick_config()
    serial = run_group_campaign(cfg, windows_per_group=8)
    batched = run_group_campaign_batched(cfg, windows_per_group=8)
    assert batched is not None
    assert set(batched.correlations) == set(serial.correlations)
    for event, corr in batched.correlations.items():
        assert -1.0 <= corr.r <= 1.0
        assert corr.group == serial.correlations[event].group
        assert corr.n_samples == 8
    assert batched.r_target_miss_vs_icache_miss is not None
    assert batched.r_speculation_vs_l1_miss is not None
    assert batched.r_branches_vs_target_miss is not None
    assert batched.r_cond_miss_vs_branches is not None


@pytest.mark.slow
def test_vector_engine_routes_group_campaign():
    """Under the vector engine run_group_campaign takes the batch path
    and produces the identical report (same realization, same forks)."""
    from repro.core.correlation import (
        run_group_campaign,
        run_group_campaign_batched,
    )

    cfg = quick_config()
    direct = run_group_campaign_batched(cfg, windows_per_group=6)
    try:
        set_default_engine("vector")
        routed = run_group_campaign(cfg, windows_per_group=6)
    finally:
        set_default_engine(None)
    assert {e: c.r for e, c in routed.correlations.items()} == {
        e: c.r for e, c in direct.correlations.items()
    }
