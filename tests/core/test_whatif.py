"""Tests for the what-if estimator and its scenario transforms."""

import pytest

from repro.config import ExperimentConfig, PipelineLatencies
from repro.core.characterization import HardwareSummary
from repro.core.whatif import Estimate, WhatIfAnalyzer, default_scenarios


@pytest.fixture(scope="module")
def hw(hw_snapshots):
    return HardwareSummary.from_snapshots(hw_snapshots)


@pytest.fixture(scope="module")
def analyzer():
    return WhatIfAnalyzer()


class TestScenarios:
    def test_all_default_scenarios_named(self, analyzer):
        names = {s.name for s in analyzer.scenarios}
        assert names == {
            "faster-l3",
            "code-large-pages",
            "devirtualization",
            "bigger-erat",
        }

    def test_every_estimate_is_an_improvement(self, hw, analyzer):
        """Every Section 4 proposal should estimate as a (possibly
        small) CPI reduction on the measured system."""
        for estimate in analyzer.estimate_all(hw, PipelineLatencies()):
            assert estimate.cpi_delta <= 0.0
            assert estimate.estimated_cpi > 0.0
            assert estimate.speedup >= 1.0

    def test_faster_l3_is_the_big_lever(self, hw, analyzer):
        """The paper singles out L2/L3 capacity/latency as the sizeable
        opportunity; it should out-estimate the niche fixes."""
        estimates = {e.scenario: e for e in analyzer.estimate_all(hw, PipelineLatencies())}
        assert (
            estimates["faster-l3"].cpi_delta
            < estimates["devirtualization"].cpi_delta
        )

    def test_estimates_sorted_best_first(self, hw, analyzer):
        estimates = analyzer.estimate_all(hw, PipelineLatencies())
        cpis = [e.estimated_cpi for e in estimates]
        assert cpis == sorted(cpis)

    def test_scenario_lookup(self, analyzer):
        assert analyzer.scenario("faster-l3").name == "faster-l3"
        with pytest.raises(KeyError):
            analyzer.scenario("warp-drive")

    def test_render(self, hw, analyzer):
        lines = analyzer.render_lines(analyzer.estimate_all(hw, PipelineLatencies()))
        assert any("faster-l3" in l for l in lines)


class TestTransforms:
    def test_transforms_are_pure(self, analyzer):
        base = ExperimentConfig()
        for scenario in analyzer.scenarios:
            enhanced = scenario.apply(base)
            assert enhanced is not base
        # The base config is untouched.
        assert base.jvm.code_large_pages is False
        assert base.jvm.devirtualize_fraction == 0.0

    def test_code_large_pages_transform(self, analyzer):
        enhanced = analyzer.scenario("code-large-pages").apply(ExperimentConfig())
        assert enhanced.jvm.code_large_pages

    def test_faster_l3_transform(self, analyzer):
        base = ExperimentConfig()
        enhanced = analyzer.scenario("faster-l3").apply(base)
        assert (
            enhanced.machine.latencies.data_from_l3
            < base.machine.latencies.data_from_l3
        )

    def test_bigger_erat_transform(self, analyzer):
        base = ExperimentConfig()
        enhanced = analyzer.scenario("bigger-erat").apply(base)
        assert (
            enhanced.machine.translation.derat_entries
            == base.machine.translation.derat_entries * 2
        )

    def test_devirtualization_transform(self, analyzer):
        enhanced = analyzer.scenario("devirtualization").apply(ExperimentConfig())
        assert enhanced.jvm.devirtualize_fraction == pytest.approx(0.5)


class TestEstimateMath:
    def test_speedup_definition(self):
        e = Estimate(scenario="x", baseline_cpi=3.0, estimated_cpi=2.5)
        assert e.speedup == pytest.approx(1.2)
        assert e.cpi_delta == pytest.approx(-0.5)
