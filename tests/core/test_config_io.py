"""Tests for config JSON serialization (experiment manifests)."""

import dataclasses
import json

import pytest

from repro.config import (
    DegradationPolicy,
    ExperimentConfig,
    FaultConfig,
    FaultEvent,
    RetryPolicy,
)
from repro.config_io import (
    FORMAT,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.workload.presets import (
    jas2004,
    jas2004_sovereign,
    jbb2000_like,
    jvm98_like,
    tpcw_like,
    trade6,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            ExperimentConfig,
            jas2004,
            jbb2000_like,
            jvm98_like,
            tpcw_like,
            jas2004_sovereign,
            trade6,
        ],
    )
    def test_every_preset_round_trips(self, factory):
        config = factory()
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "experiment.json"
        config = jas2004(ir=47, duration_s=777.0, seed=99)
        save_config(config, path)
        assert load_config(path) == config

    def test_json_is_plain(self):
        """The payload survives a strict JSON round trip."""
        data = config_to_dict(jas2004())
        rebuilt = config_from_dict(json.loads(json.dumps(data)))
        assert rebuilt == jas2004()

    def test_format_marker_present(self, tmp_path):
        path = tmp_path / "c.json"
        save_config(ExperimentConfig(), path)
        assert json.loads(path.read_text())["_format"] == FORMAT


class TestFaultRoundTrip:
    def faulted_config(self):
        faults = FaultConfig(
            events=(
                FaultEvent(
                    kind="db_slowdown", start_s=100.0, duration_s=30.0, magnitude=3.0
                ),
                FaultEvent(
                    kind="tier_crash", start_s=200.0, duration_s=15.0, target=2
                ),
            ),
            retry=RetryPolicy(enabled=True, max_attempts=5, backoff_base_s=0.7),
            degradation=DegradationPolicy(enabled=True, brownout_threshold=0.4),
        )
        return dataclasses.replace(jas2004(duration_s=600.0), faults=faults)

    def test_fault_config_round_trips(self):
        config = self.faulted_config()
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.faults.events[0].magnitude == 3.0
        assert rebuilt.faults.retry.enabled

    def test_fault_config_survives_strict_json(self, tmp_path):
        path = tmp_path / "faulted.json"
        config = self.faulted_config()
        save_config(config, path)
        assert load_config(path) == config

    def test_config_without_faults_section_loads_default(self):
        """Manifests written before the resilience subsystem existed
        have no "faults" key and must load with the zero-cost default."""
        data = config_to_dict(ExperimentConfig())
        del data["faults"]
        rebuilt = config_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.faults == FaultConfig()
        assert not rebuilt.faults.is_active
        assert rebuilt == ExperimentConfig()

    def test_default_faults_serialize_inactive(self):
        data = config_to_dict(ExperimentConfig())
        assert list(data["faults"]["events"]) == []
        assert data["faults"]["retry"]["enabled"] is False
        assert data["faults"]["degradation"]["enabled"] is False


class TestValidation:
    def test_missing_marker_rejected(self):
        data = config_to_dict(ExperimentConfig())
        del data["_format"]
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_wrong_marker_rejected(self):
        data = config_to_dict(ExperimentConfig())
        data["_format"] = "something/else"
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_loaded_config_is_usable(self, tmp_path):
        """A reloaded config drives a run to identical results."""
        from repro.workload.metrics import evaluate_run
        from repro.workload.sut import SystemUnderTest

        config = jas2004(duration_s=120.0, seed=5)
        path = tmp_path / "c.json"
        save_config(config, path)
        a = evaluate_run(SystemUnderTest(config).run())
        b = evaluate_run(SystemUnderTest(load_config(path)).run())
        assert a.jops == b.jops
        assert a.gc_count == b.gc_count
