"""End-to-end tests for the characterization orchestrator, the rule
base, and the report renderer."""

import pytest

from repro.core.characterization import HardwareSummary
from repro.core.insights import derive_findings
from repro.core.report import render_lines, render_report
from repro.cpu.sources import DataSource, InstSource


@pytest.fixture(scope="module")
def full_report(quick_study):
    return quick_study.run(hw_windows=40, correlation_windows_per_group=30)


class TestHardwareSummary:
    def test_from_snapshots(self, hw_snapshots):
        hw = HardwareSummary.from_snapshots(hw_snapshots)
        assert 2.0 < hw.cpi < 4.5
        assert 1.7 < hw.speculation_rate < 3.0
        assert 0.4 < hw.memory_ops_per_instr < 0.65
        assert sum(hw.data_source_shares.values()) == pytest.approx(1.0)
        assert sum(hw.inst_source_shares.values()) == pytest.approx(1.0)

    def test_paper_bands(self, hw_snapshots):
        """The headline Section 4.2 ratios stay in the paper's bands."""
        hw = HardwareSummary.from_snapshots(hw_snapshots)
        assert 2.5 < hw.instr_per_load < 4.0  # paper: 3.2
        assert 3.8 < hw.instr_per_store < 6.0  # paper: 4.5
        assert 0.05 < hw.l1d_load_miss_rate < 0.15  # paper: 1/12
        assert 0.10 < hw.l1d_store_miss_rate < 0.28  # paper: 1/5
        assert 0.65 < hw.data_source_shares[DataSource.L2] < 0.85  # paper: 75%
        assert 0.03 < hw.cond_mispredict_rate < 0.09  # paper: 6%
        assert hw.derat_miss_per_instr < 0.01  # paper: >100 instr apart
        assert 0.5 < hw.tlb_satisfies_derat < 0.9  # paper: 75%
        assert 350 < hw.instr_per_larx < 1000  # paper: ~600
        assert hw.sync_srq_fraction < 0.01  # paper: <1%
        assert hw.modified_remote_share < 0.01  # paper: very little

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HardwareSummary.from_snapshots([])


class TestCharacterizationReport:
    def test_all_sections_present(self, full_report):
        assert full_report.benchmark.passed
        assert full_report.gc.collections > 3
        assert full_report.profile.n_items > 0
        assert full_report.hardware.instructions > 0
        assert full_report.correlations is not None
        assert full_report.findings

    def test_component_shares(self, full_report):
        shares = full_report.component_shares
        assert shares["was_jited"] > 0.15
        assert 0.005 < full_report.jas2004_share < 0.05

    def test_hottest_method_name(self, full_report):
        assert "CharToByte" in full_report.hottest_method_name


class TestInsights:
    def test_paper_findings_fire_for_jas2004(self, full_report):
        ids = {f.id for f in full_report.findings}
        assert "gc-not-a-bottleneck" in ids
        assert "mark-locality" in ids
        assert "memory-intensive" in ids
        assert "co-scheduling-unpromising" in ids
        assert "code-footprint-large" in ids
        assert "sync-cheap" in ids
        assert "locking-frequent-uncontended" in ids
        assert "cpi-correlates" in ids

    def test_contradictory_findings_never_fire_together(self, full_report):
        ids = {f.id for f in full_report.findings}
        assert not ("gc-not-a-bottleneck" in ids and "gc-significant" in ids)
        assert not ("flat-profile" in ids and "hot-spots-exist" in ids)
        assert not (
            "co-scheduling-unpromising" in ids and "co-scheduling-promising" in ids
        )

    def test_findings_render(self, full_report):
        for finding in full_report.findings:
            text = finding.render()
            assert finding.id in text
            assert "evidence:" in text

    def test_derive_is_pure(self, full_report):
        again = derive_findings(full_report)
        assert [f.id for f in again] == [f.id for f in full_report.findings]


class TestReportRendering:
    def test_render_contains_all_sections(self, full_report):
        text = render_report(full_report)
        for marker in (
            "Benchmark (high-level)",
            "Garbage collection (Figure 3)",
            "CPU profile (Figure 4)",
            "Hardware summary (Figures 5-9)",
            "CPI correlation (Figure 10)",
            "Findings",
        ):
            assert marker in text

    def test_render_lines_are_strings(self, full_report):
        for line in render_lines(full_report):
            assert isinstance(line, str)

    def test_inst_sources_rendered(self, full_report):
        text = render_report(full_report)
        assert InstSource.L1.value in text
