"""Unit tests for the metrics registry: instrument semantics,
get-or-create identity over label sets, and deterministic snapshots."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_metric_name,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5


class TestGauge:
    def test_tracks_extremes_and_updates(self):
        g = Gauge("x")
        for v in (5.0, -1.0, 3.0):
            g.set(v)
        assert g.value == 3.0
        assert g.min_value == -1.0
        assert g.max_value == 5.0
        assert g.updates == 3


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 2.0, 100.0):
            h.observe(v)
        # <=1, <=1, <=10, overflow
        assert h.bucket_counts == [2, 1]
        assert h.overflow == 1
        assert h.count == 4
        assert h.total == pytest.approx(103.5)
        assert h.mean == pytest.approx(103.5 / 4)
        assert (h.min_value, h.max_value) == (0.5, 100.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(10.0, 1.0))

    def test_empty_mean_is_zero(self):
        assert Histogram("x").mean == 0.0


class TestRegistryIdentity:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("a") is reg.gauge("a")
        assert reg.histogram("a") is reg.histogram("a")

    def test_label_order_is_canonicalized(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a", {"x": 1, "y": 2})
        c2 = reg.counter("a", {"y": 2, "x": 1})
        assert c1 is c2

    def test_distinct_labels_distinct_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("a", {"t": "web"}) is not reg.counter("a", {"t": "db"})
        assert len(reg) == 2

    def test_counter_and_gauge_namespaces_are_separate(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("a").set(7)
        # value() prefers the counter when both exist under one name.
        assert reg.value("a") == 3

    def test_value_unset_is_none(self):
        assert MetricsRegistry().value("nope") is None


class TestRendering:
    def test_render_metric_name(self):
        assert render_metric_name("a", ()) == "a"
        assert render_metric_name("a", (("k", "v"), ("x", "1"))) == "a{k=v,x=1}"

    def test_snapshot_is_deterministic_across_insertion_orders(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name).inc()
                reg.gauge(f"g.{name}").set(1.0)
                reg.histogram(f"h.{name}").observe(2.0)
            return reg.snapshot()

        assert build(["b", "a", "c"]) == build(["c", "b", "a"])

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("runs", {"tier": "was"}).inc(4)
        reg.gauge("heap").set(10.0)
        reg.histogram("pause", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"runs{tier=was}": 4.0}
        assert snap["gauges"]["heap"]["value"] == 10.0
        hist = snap["histograms"]["pause"]
        assert hist["count"] == 1 and hist["buckets"] == [1]

    def test_render_lines_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(3.0)
        lines = reg.render_lines()
        assert lines[0].startswith("a") and lines[1].startswith("b")
        assert any("n=1" in line for line in lines)

    def test_default_bounds_are_sorted(self):
        assert tuple(sorted(DEFAULT_BOUNDS)) == DEFAULT_BOUNDS


class TestSnapshotDelta:
    """:func:`snapshot_delta` — windowed differencing of snapshots."""

    def _registry(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("req", {"tier": "web"}).inc(10)
        reg.gauge("heap").set(100.0)
        reg.histogram("pause", bounds=(1.0, 10.0)).observe(0.5)
        return reg

    def test_counter_deltas_union_of_keys(self):
        from repro.obs.metrics import snapshot_delta

        reg = self._registry()
        before = reg.snapshot()
        reg.counter("req", {"tier": "web"}).inc(5)
        reg.counter("req", {"tier": "db"}).inc(3)  # appears after only
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["counters"]["req{tier=web}"] == 5
        assert delta["counters"]["req{tier=db}"] == 3

    def test_gauge_delta_keeps_latest_value(self):
        from repro.obs.metrics import snapshot_delta

        reg = self._registry()
        before = reg.snapshot()
        reg.gauge("heap").set(140.0)
        reg.gauge("heap").set(130.0)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["gauges"]["heap"] == {
            "value": 130.0, "delta": 30.0, "updates": 2
        }

    def test_histogram_bucket_and_sum_deltas(self):
        from repro.obs.metrics import snapshot_delta

        reg = self._registry()
        before = reg.snapshot()
        reg.histogram("pause", bounds=(1.0, 10.0)).observe(2.0)
        reg.histogram("pause", bounds=(1.0, 10.0)).observe(100.0)
        delta = snapshot_delta(before, reg.snapshot())
        hist = delta["histograms"]["pause"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(102.0)
        assert hist["mean"] == pytest.approx(51.0)
        assert hist["buckets"] == [0, 1]
        assert hist["overflow"] == 1

    def test_identical_snapshots_delta_to_zero(self):
        from repro.obs.metrics import snapshot_delta

        snap = self._registry().snapshot()
        delta = snapshot_delta(snap, snap)
        assert set(delta["counters"].values()) == {0.0}
        assert all(g["delta"] == 0.0 for g in delta["gauges"].values())
        assert all(h["count"] == 0 for h in delta["histograms"].values())

    def test_changed_histogram_bounds_raise(self):
        from repro.obs.metrics import MetricsRegistry, snapshot_delta

        before = self._registry().snapshot()
        other = MetricsRegistry()
        other.histogram("pause", bounds=(5.0,)).observe(1.0)
        with pytest.raises(ValueError):
            snapshot_delta(before, other.snapshot())

    def test_registry_method_matches_function(self):
        from repro.obs.metrics import snapshot_delta

        reg = self._registry()
        before = reg.snapshot()
        reg.counter("req", {"tier": "web"}).inc(1)
        assert reg.snapshot_delta(before) == snapshot_delta(
            before, reg.snapshot()
        )
