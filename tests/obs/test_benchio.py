"""Regression tests for the BENCH_*.json envelope (schema 2)."""

import json

import pytest

from repro.benchio import (
    BENCH_SCHEMA,
    RESERVED_KEYS,
    bench_payload,
    bench_results,
    read_bench_json,
    read_bench_payload,
    write_bench_json,
)
from repro.obs.manifest import host_fingerprint

ENVELOPE_KEYS = {
    "schema",
    "kind",
    "host",
    "git_describe",
    "recorded_at",
    "repetitions",
    "spread",
}


class TestEnvelope:
    def test_schema_is_the_integer_two(self):
        payload = bench_payload({"kernel": {"ns": 12}}, kind="core_model_bench")
        # An *integer* version — consumers compare with == 2, and the
        # envelope format is pinned by this test.
        assert payload["schema"] == 2
        assert isinstance(payload["schema"], int)
        assert BENCH_SCHEMA == 2

    def test_kind_and_host_stamped(self):
        payload = bench_payload({"a": 1}, kind="sweep_bench")
        assert payload["kind"] == "sweep_bench"
        assert payload["host"] == host_fingerprint()

    def test_provenance_fields_stamped(self):
        payload = bench_payload({"a": 1}, kind="k", repetitions=5)
        assert isinstance(payload["git_describe"], str)
        assert payload["git_describe"]
        # UTC ISO-8601 with second precision.
        assert payload["recorded_at"].endswith("+00:00")
        assert "T" in payload["recorded_at"]
        assert payload["repetitions"] == 5
        assert payload["spread"] == {}

    def test_spread_copied_in(self):
        spread = {"kernel": 0.07}
        payload = bench_payload({"kernel": 1}, kind="k", spread=spread)
        assert payload["spread"] == {"kernel": 0.07}
        assert payload["spread"] is not spread

    def test_reserved_keys_cover_the_envelope(self):
        assert RESERVED_KEYS == frozenset(ENVELOPE_KEYS)

    def test_results_preserved_untouched(self):
        results = {"fill": {"ns_per_op": 81.5}, "access": {"ns_per_op": 44.0}}
        payload = bench_payload(results, kind="k")
        for key, value in results.items():
            assert payload[key] == value

    def test_input_not_mutated(self):
        results = {"a": 1}
        bench_payload(results, kind="k")
        assert results == {"a": 1}

    def test_reserved_key_collision_rejected(self):
        for key in sorted(RESERVED_KEYS):
            with pytest.raises(ValueError, match="reserved"):
                bench_payload({key: "clobber"}, kind="k")

    def test_nonpositive_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            bench_payload({"a": 1}, kind="k", repetitions=0)


class TestReader:
    def test_schema_2_passes_through(self):
        payload = bench_payload({"a": 1}, kind="k", repetitions=5)
        back = read_bench_payload(payload)
        assert back == payload
        assert back is not payload  # a copy, not an alias

    def test_schema_1_migrates_with_defaults(self):
        old = {"schema": 1, "kind": "k", "host": host_fingerprint(), "a": 1}
        migrated = read_bench_payload(old)
        assert migrated["schema"] == BENCH_SCHEMA
        assert migrated["git_describe"] == "unknown"
        assert migrated["recorded_at"] is None
        assert migrated["repetitions"] == 1
        assert migrated["spread"] == {}
        assert migrated["a"] == 1
        # The source document is not mutated by migration.
        assert old["schema"] == 1

    def test_unknown_schema_rejected(self):
        for schema in (0, 3, "2", None):
            with pytest.raises(ValueError, match="schema"):
                read_bench_payload({"schema": schema, "kind": "k"})

    def test_bench_results_strips_envelope(self):
        payload = bench_payload(
            {"kernel": {"best_s": 0.1}}, kind="k", repetitions=5
        )
        assert bench_results(payload) == {"kernel": {"best_s": 0.1}}


class TestWriter:
    def test_roundtrip(self, tmp_path):
        path = write_bench_json(
            tmp_path / "BENCH_test.json",
            {"kernel": 1},
            kind="core_model_bench",
            repetitions=5,
            spread={"kernel": 0.02},
        )
        doc = json.loads(path.read_text())
        assert doc["schema"] == 2
        assert doc["kind"] == "core_model_bench"
        assert doc["kernel"] == 1
        assert doc["repetitions"] == 5
        assert doc["spread"] == {"kernel": 0.02}
        assert set(doc["host"]) == {"python", "implementation", "platform", "machine"}

    def test_read_bench_json_normalizes_schema_1_files(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(
            json.dumps({"schema": 1, "kind": "k", "host": {}, "a": 1})
        )
        doc = read_bench_json(path)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["repetitions"] == 1

    def test_read_bench_json_roundtrip(self, tmp_path):
        written = write_bench_json(
            tmp_path / "b.json", {"k": [1, 2]}, kind="k", repetitions=5
        )
        doc = read_bench_json(written)
        assert doc["k"] == [1, 2]
        assert doc["schema"] == 2

    def test_trailing_newline(self, tmp_path):
        path = write_bench_json(tmp_path / "b.json", {}, kind="k")
        assert path.read_text().endswith("\n")
