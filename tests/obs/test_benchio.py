"""Regression tests for the BENCH_*.json envelope."""

import json

import pytest

from repro.benchio import BENCH_SCHEMA, RESERVED_KEYS, bench_payload, write_bench_json
from repro.obs.manifest import host_fingerprint


class TestEnvelope:
    def test_schema_is_the_integer_one(self):
        payload = bench_payload({"kernel": {"ns": 12}}, kind="core_model_bench")
        # An *integer* version — consumers compare with == 1, and the
        # envelope format is pinned by this test.
        assert payload["schema"] == 1
        assert isinstance(payload["schema"], int)
        assert BENCH_SCHEMA == 1

    def test_kind_and_host_stamped(self):
        payload = bench_payload({"a": 1}, kind="sweep_bench")
        assert payload["kind"] == "sweep_bench"
        assert payload["host"] == host_fingerprint()

    def test_results_preserved_untouched(self):
        results = {"fill": {"ns_per_op": 81.5}, "access": {"ns_per_op": 44.0}}
        payload = bench_payload(results, kind="k")
        for key, value in results.items():
            assert payload[key] == value

    def test_input_not_mutated(self):
        results = {"a": 1}
        bench_payload(results, kind="k")
        assert results == {"a": 1}

    def test_reserved_key_collision_rejected(self):
        for key in sorted(RESERVED_KEYS):
            with pytest.raises(ValueError, match="reserved"):
                bench_payload({key: "clobber"}, kind="k")


class TestWriter:
    def test_roundtrip(self, tmp_path):
        path = write_bench_json(
            tmp_path / "BENCH_test.json", {"kernel": 1}, kind="core_model_bench"
        )
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["kind"] == "core_model_bench"
        assert doc["kernel"] == 1
        assert set(doc["host"]) == {"python", "implementation", "platform", "machine"}

    def test_trailing_newline(self, tmp_path):
        path = write_bench_json(tmp_path / "b.json", {}, kind="k")
        assert path.read_text().endswith("\n")
