"""Unit tests for the active-session mechanism: installation, scoping
and restoration — the machinery the zero-cost guards rely on."""

import pytest

from repro.obs import Observability, active, install, observe
from repro.obs import runtime


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert active() is None, "a previous test leaked an active session"
    yield
    install(None)


class TestInstall:
    def test_install_returns_previous(self):
        first = Observability()
        second = Observability()
        assert install(first) is None
        assert install(second) is first
        assert active() is second
        install(None)
        assert active() is None

    def test_module_global_tracks_active(self):
        obs = Observability()
        install(obs)
        # Hot paths read the global directly; it must be the same object.
        assert runtime._ACTIVE is obs is active()
        install(None)


class TestObserve:
    def test_creates_and_restores(self):
        with observe() as obs:
            assert active() is obs
        assert active() is None

    def test_accepts_existing_session(self):
        mine = Observability()
        with observe(mine) as obs:
            assert obs is mine

    def test_nesting_restores_outer(self):
        with observe() as outer:
            with observe() as inner:
                assert active() is inner
            assert active() is outer

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observe():
                raise RuntimeError("boom")
        assert active() is None


class TestSessionState:
    def test_fresh_session_is_empty(self):
        obs = Observability()
        assert len(obs.metrics) == 0
        assert obs.tracer.spans == []
        assert obs.run_records == []

    def test_record_run_appends(self):
        obs = Observability()
        obs.record_run("k", 1, None, "simulated")
        assert obs.run_records[0].config_key == "k"
