"""The zero-cost contract: observability never changes the science.

Two guarantees from :mod:`repro.obs.runtime`, asserted here end to end:

* **disabled** — with no active session the instrumented call sites are
  a single ``is not None`` test; a run produces bit-identical outputs
  to one executed under a session (so instrumentation cannot have
  perturbed RNG draws or float accumulation order in either mode);
* **enabled** — a session only *records*; the scientific outputs
  (tick records, GC events, response samples, experiment reports) are
  byte-identical, with the trace/metrics artifacts added alongside.
"""

import pytest

from repro.experiments.reproduce_all import run as sweep
from repro.obs import Observability, observe
from repro.runcache import RunCache, set_default_cache
from repro.workload.sut import SystemUnderTest
from tests.conftest import make_quick_config

SUBSET = ["fig03_gc", "tab_utilization"]


def _isolated_sweep():
    """One reproduce-all subset run against a private, empty run cache.

    Isolation keeps both arms honest: each one actually simulates
    instead of replaying the session-wide memoized result, so equality
    below compares two real executions, not one result with itself.
    """
    previous = set_default_cache(RunCache())
    try:
        return sweep(make_quick_config(), only=SUBSET)
    finally:
        set_default_cache(previous)


@pytest.fixture(scope="module")
def disabled_sweep():
    return _isolated_sweep()


@pytest.fixture(scope="module")
def enabled_sweep():
    with observe() as obs:
        result = _isolated_sweep()
    return result, obs


class TestSutRunIdentical:
    """The workload simulator itself, with and without a session."""

    def test_enabled_run_bit_identical_to_disabled(self, quick_config, quick_run):
        with observe() as obs:
            instrumented = SystemUnderTest(quick_config).run()
        baseline = quick_run
        assert instrumented.timeline.records == baseline.timeline.records
        assert instrumented.gc_events == baseline.gc_events
        assert instrumented.responses == baseline.responses
        assert instrumented.rejected == baseline.rejected
        assert instrumented.db_hit_ratio == baseline.db_hit_ratio
        assert instrumented.disk_utilization == baseline.disk_utilization
        assert instrumented.final_heap_used == baseline.final_heap_used
        # And the session really was live, not silently inert.
        assert obs.metrics.value("sut.runs") == 1
        assert obs.metrics.value("jvm.gc.collections") == len(baseline.gc_events)


class TestObjProfZeroCost:
    """The object-centric profiler inherits the same contract: charges
    are pure integer side counters, so a profiled run is bit-identical
    to an unprofiled one — while the site ledgers genuinely fill."""

    def test_objprof_sut_run_bit_identical(self, quick_config, quick_run):
        from repro.obs import objprof

        with objprof.profile_objects() as prof:
            profiled = SystemUnderTest(quick_config).run()
        baseline = quick_run
        assert profiled.timeline.records == baseline.timeline.records
        assert profiled.gc_events == baseline.gc_events
        assert profiled.responses == baseline.responses
        assert profiled.rejected == baseline.rejected
        assert profiled.db_hit_ratio == baseline.db_hit_ratio
        assert profiled.final_heap_used == baseline.final_heap_used
        # Non-vacuity: the heap was observed at site granularity.
        assert prof.ledgers
        ledger = prof.ledgers[0]
        assert sum(ledger.allocated_total) > 0
        assert all(ledger.reconcile().values())

    def test_objprof_sampled_windows_bit_identical(self, quick_config):
        from repro.core.characterization import Characterization
        from repro.obs import objprof

        def sample(n=6):
            return Characterization(quick_config).sample_windows(n)

        baseline = sample()
        with objprof.profile_objects() as prof:
            profiled = sample()
        # Event enums don't order; compare by-name dicts per window.
        assert [
            {e.name: v for e, v in s.snapshot.counts.items()}
            for s in profiled
        ] == [
            {e.name: v for e, v in s.snapshot.counts.items()}
            for s in baseline
        ]
        # Non-vacuity: misses were charged while sampling, and every
        # sampled-window L1D load miss is among the charges (warmup
        # windows are profiled too, hence >=).
        from repro.hpm.events import Event

        sampled = sum(s.snapshot[Event.PM_LD_MISS_L1] for s in baseline)
        charged = prof.build_profile().total(objprof.SLOT_LD_MISS)
        assert charged >= sampled > 0

    def test_objprof_declines_vector_engine(self, quick_config):
        from repro.core.characterization import Characterization
        from repro.cpu.vector import vector_supported
        from repro.obs import objprof

        study = Characterization(quick_config)
        with objprof.profile_objects():
            ok, reason = vector_supported(study.core, study.space)
            assert not ok
            assert "objprof" in reason

    def test_objprof_bypasses_run_cache(self, quick_config):
        from repro.obs import objprof

        cache = RunCache()
        cache.get_or_run(quick_config)
        with objprof.profile_objects() as prof:
            cache.get_or_run(quick_config)
        # The profiled lookup simulated (a replay would never build a
        # heap, so the ledger would stay empty).
        assert cache.stats.misses == 2
        assert prof.ledgers


class TestSamplerZeroCost:
    """The performance observatory inherits the zero-cost contract:
    sampling the host stack reads frames, never touches the science."""

    def test_sampled_run_bit_identical(self, quick_config, quick_run):
        from repro.perf.sampler import StackSampler

        sampler = StackSampler(interval_s=0.002)
        sampler.start()
        try:
            sampled = SystemUnderTest(quick_config).run()
        finally:
            log = sampler.stop()
        baseline = quick_run
        assert sampled.timeline.records == baseline.timeline.records
        assert sampled.gc_events == baseline.gc_events
        assert sampled.responses == baseline.responses
        assert sampled.rejected == baseline.rejected
        assert sampled.db_hit_ratio == baseline.db_hit_ratio
        assert sampled.final_heap_used == baseline.final_heap_used
        # Non-vacuity: the sampler really ran alongside the science.
        assert log.duration_s > 0

    def test_sampled_observed_sweep_bit_identical(self, disabled_sweep):
        """Sampler + obs session together — still byte-identical."""
        from repro.perf.sampler import StackSampler

        sampler = StackSampler(interval_s=0.002)
        sampler.start()
        try:
            with observe():
                sampled = _isolated_sweep()
        finally:
            sampler.stop()
        assert sampled.render_lines(include_timing=False) == \
            disabled_sweep.render_lines(include_timing=False)


class TestSweepReportIdentical:
    def test_report_byte_identical(self, disabled_sweep, enabled_sweep):
        enabled, _ = enabled_sweep
        assert enabled.render_lines(include_timing=False) == \
            disabled_sweep.render_lines(include_timing=False)

    def test_rows_identical(self, disabled_sweep, enabled_sweep):
        enabled, _ = enabled_sweep
        assert enabled.rows_total == disabled_sweep.rows_total
        assert enabled.rows_off == disabled_sweep.rows_off


class TestSessionObservedTheSweep:
    """Non-vacuity: the enabled arm recorded what happened."""

    def test_experiment_spans(self, enabled_sweep):
        _, obs = enabled_sweep
        names = {s.name for s in obs.tracer.by_category("experiment")}
        assert names == set(SUBSET)

    def test_run_phase_and_gc_spans(self, enabled_sweep):
        _, obs = enabled_sweep
        phases = {s.name for s in obs.tracer.by_category("run")}
        assert {"warmup", "steady", "sut.run"} <= phases
        assert len(obs.tracer.by_category("gc")) > 0

    def test_simulate_lookups_audited(self, enabled_sweep):
        _, obs = enabled_sweep
        sources = {r.source for r in obs.run_records}
        assert "simulated" in sources
        assert obs.metrics.value(
            "runcache.lookups", {"source": "simulated"}
        ) >= 1

    def test_metric_counters_repeatable(self, enabled_sweep):
        """A second enabled run accumulates the exact same counters."""
        _, first = enabled_sweep
        with observe(Observability()) as again:
            _isolated_sweep()
        assert again.metrics.snapshot()["counters"] == \
            first.metrics.snapshot()["counters"]
