"""Unit tests for the span tracer and its three export formats."""

import json

import pytest

from repro.obs.trace import TRACE_SCHEMA, VIRTUAL, WALL, Span, Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.record("warmup", "run", start_s=0.0, duration_s=60.0)
    t.record("steady", "run", start_s=60.0, duration_s=180.0)
    t.record("gc", "gc", start_s=30.0, duration_s=0.35, labels={"compacted": False})
    t.record("gc", "gc", start_s=90.0, duration_s=0.40, labels={"compacted": False})
    t.record("fig03_gc", "experiment", start_s=5.0, duration_s=1.5, clock=WALL)
    return t


class TestRecording:
    def test_span_end(self):
        s = Span("x", "run", start_s=2.0, duration_s=3.0)
        assert s.end_s == 5.0

    def test_by_category(self, tracer):
        assert len(tracer.by_category("gc")) == 2
        assert tracer.by_category("nope") == []

    def test_total_duration_respects_clock(self, tracer):
        assert tracer.total_duration("gc") == pytest.approx(0.75)
        assert tracer.total_duration("experiment", clock=VIRTUAL) == 0.0
        assert tracer.total_duration("experiment", clock=WALL) == pytest.approx(1.5)

    def test_context_manager_records_wall_span(self):
        t = Tracer()
        with t.span("body", "experiment", labels={"k": "v"}):
            pass
        (s,) = t.spans
        assert s.clock == WALL
        assert s.duration_s >= 0.0
        assert dict(s.labels) == {"k": "v"}

    def test_labels_canonicalized(self, tracer):
        gc = tracer.by_category("gc")[0]
        assert gc.labels == (("compacted", "False"),)


class TestJsonExport:
    def test_schema_and_roundtrip(self, tracer):
        doc = json.loads(tracer.to_json())
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["span_count"] == 5
        names = {s["name"] for s in doc["spans"]}
        assert {"warmup", "steady", "gc", "fig03_gc"} <= names

    def test_span_fields(self, tracer):
        doc = tracer.to_json_dict()
        steady = next(s for s in doc["spans"] if s["name"] == "steady")
        assert steady == {
            "name": "steady",
            "category": "run",
            "clock": VIRTUAL,
            "start_s": 60.0,
            "duration_s": 180.0,
            "labels": {},
        }


class TestChromeExport:
    def test_clocks_become_processes(self, tracer):
        doc = tracer.to_chrome_trace()
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 5
        # Virtual and wall spans land on different pids.
        pids = {e["name"]: e["pid"] for e in complete}
        assert pids["steady"] != pids["fig03_gc"]

    def test_microsecond_timestamps(self, tracer):
        doc = tracer.to_chrome_trace()
        steady = next(
            e for e in doc["traceEvents"] if e.get("name") == "steady"
        )
        assert steady["ts"] == 60.0 * 1e6
        assert steady["dur"] == 180.0 * 1e6

    def test_json_serializable(self, tracer):
        json.dumps(tracer.to_chrome_trace())


class TestBundleExport:
    def test_bins_span_time_onto_grid(self, tracer):
        bundle = tracer.to_bundle(interval_s=60.0, categories=["run"])
        series = bundle["run"]
        # 0-60: warmup fills the slot; 60-240: steady fills three slots;
        # the trailing slot is empty.
        assert list(series.values) == pytest.approx(
            [60.0, 60.0, 60.0, 60.0, 0.0]
        )
        assert sum(series.values) == pytest.approx(240.0)

    def test_partial_overlap(self):
        t = Tracer()
        t.record("x", "gc", start_s=50.0, duration_s=20.0)
        bundle = t.to_bundle(interval_s=60.0)
        # Grid starts at the first span: one slot, full 20s inside it.
        assert sum(bundle["gc"].values) == pytest.approx(20.0)

    def test_empty_selection_raises(self, tracer):
        with pytest.raises(ValueError):
            tracer.to_bundle(interval_s=1.0, categories=["nope"])
