"""Unit tests for run manifests: provenance records, the manifest
document, and the host/code identity stamps."""

import json

from repro.obs import Observability
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    SOURCE_DISK,
    SOURCE_MEMORY,
    SOURCE_SIMULATED,
    audit_lines,
    build_manifest,
    git_describe,
    host_fingerprint,
    write_manifest,
)


def _session():
    obs = Observability()
    obs.record_run("a" * 64, 2007, "workload", SOURCE_SIMULATED)
    obs.record_run("a" * 64, 2007, "workload", SOURCE_MEMORY)
    obs.record_run("b" * 64, 2007, None, SOURCE_DISK)
    obs.metrics.counter("runcache.lookups", {"source": SOURCE_SIMULATED}).inc()
    return obs


class TestIdentity:
    def test_git_describe_never_fails(self):
        # In this repo it resolves to a commit-ish; the contract is
        # simply "a non-empty string, never an exception".
        desc = git_describe()
        assert isinstance(desc, str) and desc

    def test_host_fingerprint_keys(self):
        fp = host_fingerprint()
        assert set(fp) == {"python", "implementation", "platform", "machine"}
        assert all(isinstance(v, str) and v for v in fp.values())


class TestBuildManifest:
    def test_document_shape(self):
        doc = build_manifest(_session())
        assert doc["schema"] == MANIFEST_SCHEMA
        assert len(doc["runs"]) == 3
        assert doc["runs"][0] == {
            "config_key": "a" * 64,
            "seed": 2007,
            "rng_fork": "workload",
            "source": SOURCE_SIMULATED,
        }
        assert "counters" in doc["metrics"]

    def test_cache_provenance_distinguished(self):
        doc = build_manifest(_session())
        sources = [r["source"] for r in doc["runs"]]
        assert sources == [SOURCE_SIMULATED, SOURCE_MEMORY, SOURCE_DISK]

    def test_extra_fields_merge(self):
        doc = build_manifest(_session(), extra={"command": "conform", "seed": 7})
        assert doc["command"] == "conform"
        assert doc["seed"] == 7

    def test_json_serializable(self):
        json.dumps(build_manifest(_session()))


class TestWriteManifest:
    def test_roundtrip(self, tmp_path):
        path = write_manifest(tmp_path / "run.manifest.json", _session())
        doc = json.loads(path.read_text())
        assert doc["schema"] == MANIFEST_SCHEMA
        assert len(doc["runs"]) == 3


class TestAuditLines:
    def test_one_line_per_lookup_with_provenance(self):
        lines = audit_lines(_session())
        assert len(lines) == 3
        assert SOURCE_SIMULATED in lines[0]
        assert SOURCE_MEMORY in lines[1]
        # A missing fork renders as "-".
        assert "fork=-" in lines[2].replace(" ", "")
