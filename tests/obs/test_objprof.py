"""Tests for object-centric heap profiling (:mod:`repro.obs.objprof`).

Three layers:

* the integer machinery (largest-remainder apportionment, the site
  catalog's share structure, the per-heap byte ledger) — exactness is
  the contract, so the assertions are ``==`` on byte counts;
* address→site attribution at the kernel level: a slice run under a
  profiler charges *every* data-side miss event the counter bank sees
  to some site, on both the fused kernel and the generic fallback;
* the report: deterministic DJXPerf-style ranking, metrics export and
  the data-driven what-if scenarios built from a profile.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    ExperimentConfig,
    GcCostModel,
    JvmConfig,
    MachineConfig,
    PipelineLatencies,
)
from repro.cpu import regions as R
from repro.cpu.branch import BranchUnit
from repro.cpu.hierarchy import MemorySystem
from repro.cpu.phases import gc_mark_profile, interpreter_profile, kernel_profile
from repro.cpu.pipeline import PipelineAccountant
from repro.cpu.regions import AddressSpace
from repro.cpu.sources import DataSource
from repro.cpu.stream import SliceRunner
from repro.cpu.translation import TranslationUnit
from repro.hpm.counters import CounterBank
from repro.hpm.events import Event
from repro.jvm.heap import FlatHeap
from repro.obs import objprof
from repro.obs.metrics import MetricsRegistry, snapshot_delta
from repro.util.rng import RngFactory
from repro.util.units import MB


# ---------------------------------------------------------------------------
# apportion
# ---------------------------------------------------------------------------


class TestApportion:
    def test_exact_sum_and_proportionality(self):
        parts = objprof.apportion(100, [1.0, 1.0, 2.0])
        assert parts == [25, 25, 50]

    def test_remainders_go_to_largest_fractions(self):
        # 10 * [.55, .25, .20] = [5.5, 2.5, 2.0]; the spare unit goes
        # to the largest remainder (tie .5 vs .5 broken by index).
        assert objprof.apportion(10, [0.55, 0.25, 0.20]) == [6, 2, 2]

    def test_all_zero_weights_fall_to_first(self):
        assert objprof.apportion(7, [0.0, 0.0]) == [7, 0]

    def test_zero_total(self):
        assert objprof.apportion(0, [3.0, 1.0]) == [0, 0]

    def test_rejects_negative_total_and_weights(self):
        with pytest.raises(ValueError):
            objprof.apportion(-1, [1.0])
        with pytest.raises(ValueError):
            objprof.apportion(1, [1.0, -0.5])
        with pytest.raises(ValueError):
            objprof.apportion(1, [])

    @settings(max_examples=80, deadline=None)
    @given(
        total=st.integers(0, 10**9),
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=8),
    )
    def test_parts_always_sum_exactly(self, total, weights):
        parts = objprof.apportion(total, weights)
        assert sum(parts) == total
        assert all(p >= 0 for p in parts)


# ---------------------------------------------------------------------------
# Catalog structure
# ---------------------------------------------------------------------------


class TestCatalog:
    def test_heap_shares_sum_to_one(self):
        heap = [s for s in objprof.default_catalog() if s.kind == "heap"]
        assert sum(s.alloc_share for s in heap) == pytest.approx(1.0)
        assert sum(s.live_share for s in heap) == pytest.approx(1.0)

    def test_heap_region_weight_columns_sum_to_one(self):
        heap = [s for s in objprof.default_catalog() if s.kind == "heap"]
        strata = {
            R.HEAP_HOT, R.HEAP_MEDIUM, R.HEAP_COLD,
            R.HEAP_ALLOC, R.HEAP_SHARED,
        }
        for region_name in strata:
            column = sum(s.region_weights.get(region_name, 0.0) for s in heap)
            assert column == pytest.approx(1.0), region_name

    def test_infra_sites_own_their_regions(self):
        catalog = {s.name: s for s in objprof.default_catalog()}
        assert catalog["stack_frames"].region_weights == {R.STACK: 1.0}
        assert catalog["db_buffer_pool"].region_weights == {R.DB_BUFFER: 1.0}
        assert catalog["gc_metadata"].region_weights == {R.GC_BITMAP: 1.0}

    def test_invalid_kind_and_lifetime_rejected(self):
        with pytest.raises(ValueError):
            objprof.SiteClass(name="x", kind="bogus", lifetime_class="request",
                              description="")
        with pytest.raises(ValueError):
            objprof.SiteClass(name="x", kind="heap", lifetime_class="eternal",
                              description="")

    def test_duplicate_site_names_rejected(self):
        site = objprof.SiteClass(
            name="dup", kind="heap", lifetime_class="request", description=""
        )
        with pytest.raises(ValueError):
            objprof.ObjProfiler([site, site])


# ---------------------------------------------------------------------------
# The byte ledger
# ---------------------------------------------------------------------------


def make_heap(heap_mb=128):
    return FlatHeap(JvmConfig(heap_mb=heap_mb, gc=GcCostModel()))


class TestSiteLedger:
    def test_heap_without_profiler_has_no_ledger(self):
        assert make_heap()._objprof_ledger is None

    def test_ledger_reconciles_through_alloc_gc_compact(self):
        with objprof.profile_objects() as prof:
            heap = make_heap()
            ledger = heap._objprof_ledger
            assert ledger is not None
            assert prof.ledgers == [ledger]
            heap.set_live(20 * MB)
            heap.allocate(30 * MB)
            heap.allocate(7 * MB + 12345)
            assert ledger.reconcile() == {
                "fresh": True, "dark": True, "live": True
            }
            ledger.note_gc(10.0)
            heap.reclaim(surviving_fraction=0.23, dark_matter_added=3 * MB + 7)
            assert ledger.reconcile() == {
                "fresh": True, "dark": True, "live": True
            }
            heap.allocate(5 * MB)
            ledger.note_gc(20.0)
            heap.reclaim(surviving_fraction=0.0, dark_matter_added=999)
            heap.compact()
            assert ledger.reconcile() == {
                "fresh": True, "dark": True, "live": True
            }
            assert sum(ledger.dark) == 0
            # Allocation totals only ever grow.
            assert sum(ledger.allocated_total) == 42 * MB + 12345

    def test_lifetimes_recorded_for_dying_bytes(self):
        with objprof.profile_objects():
            heap = make_heap()
            ledger = heap._objprof_ledger
            heap.allocate(10 * MB)
            ledger.note_gc(12.0)
            heap.reclaim(surviving_fraction=0.1, dark_matter_added=0)
            dead = 10 * MB - int(10 * MB * 0.1)
            assert sum(ledger.lifetime_bytes) == dead
            assert sum(sum(b) for b in ledger.lifetime_buckets) == dead
            # Transaction-scoped churn dies much younger than session
            # state relative to the same GC interval.
            names = [s.name for s in ledger.sites]
            churn = names.index("string_churn")
            session = names.index("session_state")
            mean = [
                ledger.lifetime_weighted_s[i] / ledger.lifetime_bytes[i]
                for i in (churn, session)
            ]
            assert mean[0] < mean[1]

    def test_first_gc_without_note_records_no_lifetimes(self):
        with objprof.profile_objects():
            heap = make_heap()
            ledger = heap._objprof_ledger
            heap.allocate(MB)
            heap.reclaim(0.0, 0)  # no note_gc -> interval unknown
            assert sum(ledger.lifetime_bytes) == 0
            assert ledger.reconcile()["fresh"]


# ---------------------------------------------------------------------------
# Address → site attribution
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def space():
    return AddressSpace.build(MachineConfig(), JvmConfig())


class TestExtents:
    def test_heap_region_extents_cover_exactly(self, space):
        prof = objprof.ObjProfiler()
        region = space[R.HEAP_COLD]
        # Every byte of the region resolves to some heap site, and the
        # extent boundaries are interior (0 < b < size).
        _, bounds, rows = prof._build_extents(region)
        assert len(rows) == len(bounds) + 1
        assert all(0 < b < region.size_bytes for b in bounds)
        first = prof.site_of(region, region.base)
        last = prof.site_of(region, region.end - 1)
        assert first.kind == "heap" and last.kind == "heap"

    def test_charge_lands_on_site_of(self, space):
        prof = objprof.ObjProfiler()
        region = space[R.HEAP_ALLOC]
        rng = random.Random(7)
        for _ in range(50):
            addr = region.random_address(rng)
            site = prof.site_of(region, addr)
            before = prof.counts[site.name][objprof.SLOT_LD_MISS]
            prof.charge(region, addr, objprof.SLOT_LD_MISS)
            assert prof.counts[site.name][objprof.SLOT_LD_MISS] == before + 1

    def test_infra_region_charges_owner(self, space):
        prof = objprof.ObjProfiler()
        region = space[R.DB_BUFFER]
        prof.charge(region, region.base + 123456, objprof.SLOT_ST_MISS)
        assert prof.counts["db_buffer_pool"][objprof.SLOT_ST_MISS] == 1

    def test_unclaimed_region_falls_to_other(self):
        region = R.Region(
            name="mystery", base=0, size_bytes=4096, page_bytes=4096
        )
        prof = objprof.ObjProfiler()
        prof.charge(region, 17, objprof.SLOT_DERAT_MISS)
        assert (
            prof.counts[objprof.OTHER_SITE][objprof.SLOT_DERAT_MISS] == 1
        )

    def test_extents_rebuilt_for_new_region_object(self, space):
        # A fresh AddressSpace (new Region instances, same names) must
        # not be attributed through stale cached extents.
        prof = objprof.ObjProfiler()
        r1 = space[R.HEAP_COLD]
        prof.charge(r1, r1.base, objprof.SLOT_LD_MISS)
        other_space = AddressSpace.build(
            MachineConfig(), JvmConfig(live_set_mb=64)
        )
        r2 = other_space[R.HEAP_COLD]
        assert r2 is not r1
        prof.charge(r2, r2.base, objprof.SLOT_LD_MISS)
        assert prof._extents[R.HEAP_COLD][0] is r2


# ---------------------------------------------------------------------------
# Kernel-level exact reconciliation (fused and generic paths)
# ---------------------------------------------------------------------------


class PassthroughBranchUnit(BranchUnit):
    """Behaviour-preserving subclass: forces the generic stream path."""


def _run_profiled_slice(space, cycles=60000, seed=11, force_generic=False):
    machine = MachineConfig()
    bank = CounterBank()
    rngs = RngFactory(seed)
    memory = MemorySystem(machine, bank, rngs.stream("b"))
    translation = TranslationUnit(machine.translation)
    branch_cls = PassthroughBranchUnit if force_generic else BranchUnit
    branches = branch_cls(machine.branch)
    prof_rng = random.Random(5)
    with objprof.profile_objects() as prof:
        for profile in (
            kernel_profile(prof_rng, space),
            interpreter_profile(prof_rng, space),
            gc_mark_profile(prof_rng, space),
        ):
            runner = SliceRunner(
                profile, space, memory, translation, branches,
                PipelineAccountant(machine.latencies, rngs.stream("p")),
                bank, rngs.stream("s"),
            )
            runner.run_until(cycles)
    return bank.snapshot(), prof


@pytest.mark.parametrize("force_generic", [False, True])
def test_every_bank_miss_event_is_attributed(space, force_generic):
    """Per-site sums equal the counter bank's totals *exactly* — every
    DERAT/DTLB/L1D miss and every sourced load is charged to a site."""
    snap, prof = _run_profiled_slice(space, force_generic=force_generic)
    profile = prof.build_profile()
    assert profile.total(objprof.SLOT_LD_MISS) == snap[Event.PM_LD_MISS_L1]
    assert profile.total(objprof.SLOT_ST_MISS) == snap[Event.PM_ST_MISS_L1]
    assert profile.total(objprof.SLOT_DERAT_MISS) == snap[Event.PM_DERAT_MISS]
    assert profile.total(objprof.SLOT_DTLB_MISS) == snap[Event.PM_DTLB_MISS]
    for src in DataSource:
        assert (
            profile.total(objprof.SLOT_OF_SOURCE[src]) == snap[src.event]
        ), src
    # Non-vacuity: the slices actually missed.
    assert snap[Event.PM_LD_MISS_L1] > 0
    assert snap[Event.PM_DERAT_MISS] > 0


def test_fused_and_generic_attribute_identically(space):
    """The two kernels charge the same sites the same amounts."""
    snap_f, prof_f = _run_profiled_slice(space, force_generic=False)
    snap_g, prof_g = _run_profiled_slice(space, force_generic=True)
    assert {e.name: v for e, v in snap_f.counts.items()} == \
        {e.name: v for e, v in snap_g.counts.items()}
    assert prof_f.counts == prof_g.counts


# ---------------------------------------------------------------------------
# Report, metrics export, scenarios
# ---------------------------------------------------------------------------


def _loaded_profiler():
    """A profiler with a deterministic charge pattern and one heap."""
    prof = objprof.ObjProfiler()
    space = AddressSpace.build(MachineConfig(), JvmConfig())
    rng = random.Random(3)
    for region_name, n in ((R.HEAP_COLD, 400), (R.HEAP_ALLOC, 200),
                           (R.DB_BUFFER, 100)):
        region = space[region_name]
        for _ in range(n):
            addr = region.random_address(rng)
            prof.charge(region, addr, objprof.SLOT_LD_MISS)
            prof.charge(
                region, addr, objprof.SLOT_OF_SOURCE[DataSource.MEM]
            )
    previous = objprof.install(prof)
    try:
        heap = FlatHeap(JvmConfig(heap_mb=256))
        heap.set_live(100 * MB)
        heap.allocate(40 * MB)
    finally:
        objprof.install(previous)
    return prof


class TestProfileAndScenarios:
    def test_ranking_is_deterministic_and_heap_only(self):
        profile = _loaded_profiler().build_profile(PipelineLatencies())
        top = profile.top_inefficient(3)
        assert all(r.site.kind == "heap" for r in top)
        assert [r.site.name for r in top] == [
            r.site.name
            for r in _loaded_profiler()
            .build_profile(PipelineLatencies())
            .top_inefficient(3)
        ]
        scores = [r.miss_cycles for r in top]
        assert scores == sorted(scores, reverse=True)

    def test_miss_cycles_weight_by_latency(self):
        prof = _loaded_profiler()
        lat = PipelineLatencies()
        profile = prof.build_profile(lat)
        for report in profile.reports:
            expected = (
                report.mem_sourced * lat.data_from_mem
            )
            assert report.miss_cycles == pytest.approx(expected)

    def test_export_metrics_and_windowed_delta(self):
        prof = _loaded_profiler()
        reg_a = MetricsRegistry()
        prof.export_metrics(reg_a)
        snap_a = reg_a.snapshot()
        # More charges arrive, then a second export into a fresh
        # registry; the delta isolates the second batch.
        space = AddressSpace.build(MachineConfig(), JvmConfig())
        region = space[R.DB_BUFFER]
        for _ in range(25):
            prof.charge(region, region.base, objprof.SLOT_LD_MISS)
        reg_b = MetricsRegistry()
        prof.export_metrics(reg_b)
        delta = snapshot_delta(snap_a, reg_b.snapshot())
        key = "objprof.site.ld_miss{site=db_buffer_pool}"
        assert delta["counters"][key] == 25

    def test_objprof_scenarios_target_the_profile(self):
        from repro.core.whatif import objprof_scenarios
        from repro.cpu.regions import HEAP_COLD_MEM_FRACTION

        profile = _loaded_profiler().build_profile(PipelineLatencies())
        scenarios = {s.name: s for s in objprof_scenarios(profile)}
        assert set(scenarios) == {"shrink-top-site", "segregate-churn"}
        top = profile.top_inefficient(1)[0]
        assert top.site.name in scenarios["shrink-top-site"].description

        base = ExperimentConfig()
        shrunk = scenarios["shrink-top-site"].apply(base)
        assert shrunk.jvm.cold_mem_fraction is not None
        assert shrunk.jvm.cold_mem_fraction < HEAP_COLD_MEM_FRACTION
        segregated = scenarios["segregate-churn"].apply(base)
        assert segregated.jvm.churn_segregated is True
        assert (
            segregated.jvm.gc.dark_matter_per_sweep_fraction
            <= base.jvm.gc.dark_matter_per_sweep_fraction
        )

    def test_scenarios_require_heap_sites(self):
        from repro.core.whatif import objprof_scenarios

        with pytest.raises(ValueError):
            objprof_scenarios(objprof.SiteProfile(reports=[]))


class TestSessionDiscipline:
    def test_profile_objects_restores_previous(self):
        assert objprof.active() is None
        with objprof.profile_objects() as outer:
            assert objprof.active() is outer
            with objprof.profile_objects() as inner:
                assert objprof.active() is inner
            assert objprof.active() is outer
        assert objprof.active() is None
