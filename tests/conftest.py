"""Shared fixtures.

Expensive artifacts (a full workload run, a warmed core model) are
session-scoped: they are deterministic in the config seed, so sharing
them across tests changes nothing about what is being verified.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import ExperimentConfig, SamplingConfig
from repro.core.characterization import Characterization
from repro.cpu.regions import AddressSpace
from repro.jvm.methods import MethodRegistry
from repro.util.rng import RngFactory
from repro.workload.presets import jas2004
from repro.workload.sut import SystemUnderTest


def make_quick_config(seed: int = 2007) -> ExperimentConfig:
    cfg = jas2004(duration_s=300.0, seed=seed)
    return dataclasses.replace(
        cfg,
        jvm=dataclasses.replace(cfg.jvm, n_jited_methods=800, warm_methods=40),
        sampling=SamplingConfig(window_cycles=20000, warmup_windows=5),
    )


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    return make_quick_config()


@pytest.fixture(scope="session")
def quick_run(quick_config):
    """A finished 5-minute workload run."""
    return SystemUnderTest(quick_config).run()


@pytest.fixture(scope="session")
def quick_space(quick_config) -> AddressSpace:
    return AddressSpace.build(
        quick_config.machine, quick_config.jvm, quick_config.workload.sharing
    )


@pytest.fixture(scope="session")
def quick_registry(quick_config, quick_space) -> MethodRegistry:
    return MethodRegistry(
        quick_config.jvm, quick_space, RngFactory(quick_config.seed).stream("registry")
    )


@pytest.fixture(scope="session")
def quick_study(quick_config) -> Characterization:
    """A warmed characterization study (workload + CPU model)."""
    study = Characterization(quick_config)
    study.ensure_warm()
    return study


@pytest.fixture(scope="session")
def hw_snapshots(quick_study):
    """Forty omniscient window snapshots from the warmed study."""
    samples = quick_study.sample_windows(40)
    return [s.snapshot for s in samples]


@pytest.fixture(scope="session")
def hw_aggregate(hw_snapshots):
    agg = hw_snapshots[0]
    for s in hw_snapshots[1:]:
        agg = agg.merged_with(s)
    return agg
