"""Tests for the mark-sweep-compact collector."""

import random

import pytest

from repro.config import GcCostModel, JvmConfig
from repro.jvm.gc import MarkSweepCompactCollector
from repro.jvm.heap import FlatHeap
from repro.util.units import MB


def make(heap_mb=1024, live_mb=190, **gc_kwargs):
    jvm = JvmConfig(heap_mb=heap_mb, gc=GcCostModel(**gc_kwargs))
    heap = FlatHeap(jvm)
    heap.set_live(live_mb * MB)
    collector = MarkSweepCompactCollector(jvm.gc, random.Random(0))
    return heap, collector


class TestPhaseCosts:
    def test_mark_dominates_with_paper_parameters(self):
        """The paper: mark is >80% of a 300-400 ms pause."""
        heap, collector = make()
        heap.allocate(700 * MB)
        event = collector.collect(heap, now_s=100.0)
        assert 250 < event.pause_ms < 450
        assert event.mark_fraction > 0.75
        assert not event.compacted

    def test_mark_scales_with_live_set(self):
        heap_small, collector = make(live_mb=50)
        heap_small.allocate(100 * MB)
        small = collector.collect(heap_small, 0.0).mark_ms

        heap_large, collector2 = make(live_mb=400)
        heap_large.allocate(100 * MB)
        large = collector2.collect(heap_large, 0.0).mark_ms
        assert large > small * 4

    def test_sweep_scales_with_heap_size(self):
        heap_small, c1 = make(heap_mb=256)
        heap_small.allocate(30 * MB)
        heap_large, c2 = make(heap_mb=2048)
        heap_large.allocate(30 * MB)
        assert c2.collect(heap_large, 0.0).sweep_ms > c1.collect(
            heap_small, 0.0
        ).sweep_ms * 4


class TestDarkMatterAndCompaction:
    def test_dark_matter_accumulates_per_collection(self):
        heap, collector = make()
        for i in range(5):
            heap.allocate(700 * MB)
            collector.collect(heap, float(i))
        assert heap.dark_matter_bytes > 0

    def test_compaction_triggers_at_threshold(self):
        heap, collector = make(compact_dark_matter_fraction=0.0003)
        heap.allocate(700 * MB)
        first = collector.collect(heap, 0.0)  # deposits dark matter
        assert not first.compacted
        heap.allocate(700 * MB)
        second = collector.collect(heap, 30.0)
        assert second.compacted
        assert second.compact_ms > 0
        assert heap.dark_matter_bytes == 0

    def test_no_compaction_in_an_hour_at_paper_rates(self):
        """~0.45 MB of dark matter per 26 s collection never reaches
        12% of a 1 GB heap within 60 minutes."""
        heap, collector = make()
        compactions = 0
        for i in range(140):  # ~60 minutes of collections
            heap.allocate(700 * MB)
            event = collector.collect(heap, i * 26.0)
            compactions += event.compacted
        assert compactions == 0


class TestEventRecords:
    def test_event_fields_consistent(self):
        heap, collector = make()
        heap.allocate(500 * MB)
        event = collector.collect(heap, 42.0)
        assert event.start_time_s == 42.0
        assert event.pause_ms == pytest.approx(
            event.mark_ms + event.sweep_ms + event.compact_ms
        )
        assert event.freed_bytes > 0
        assert event.live_bytes_after == heap.live_bytes
        assert collector.collections == 1
