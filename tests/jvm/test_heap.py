"""Tests for the flat heap, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GcCostModel, JvmConfig
from repro.jvm.heap import FlatHeap, HeapExhaustedError
from repro.util.units import MB


def make_heap(heap_mb=128, trigger=0.02):
    return FlatHeap(JvmConfig(heap_mb=heap_mb, gc=GcCostModel(trigger_free_fraction=trigger)))


class TestAccounting:
    def test_initial_state(self):
        heap = make_heap()
        assert heap.used_bytes == 0
        assert heap.free_bytes == heap.capacity_bytes

    def test_allocation_accumulates(self):
        heap = make_heap()
        assert not heap.allocate(10 * MB)
        assert heap.used_bytes == 10 * MB

    def test_gc_trigger_when_nearly_full(self):
        heap = make_heap(heap_mb=100)
        heap.set_live(20 * MB)
        assert heap.allocate(79 * MB)  # free < 2% now

    def test_exhaustion_raises(self):
        heap = make_heap(heap_mb=64)
        heap.set_live(60 * MB)
        with pytest.raises(HeapExhaustedError):
            heap.allocate(10 * MB)

    def test_negative_values_rejected(self):
        heap = make_heap()
        with pytest.raises(ValueError):
            heap.allocate(-1)
        with pytest.raises(ValueError):
            heap.set_live(-1)


class TestReclaim:
    def test_reclaim_frees_garbage(self):
        heap = make_heap(heap_mb=100)
        heap.allocate(50 * MB)
        freed = heap.reclaim(surviving_fraction=0.0, dark_matter_added=0)
        assert freed == 50 * MB
        assert heap.allocated_since_gc == 0

    def test_survivors_promote_to_live(self):
        heap = make_heap(heap_mb=100)
        heap.set_live(10 * MB)
        heap.allocate(50 * MB)
        heap.reclaim(surviving_fraction=0.1, dark_matter_added=0)
        assert heap.live_bytes == 15 * MB

    def test_dark_matter_persists_until_compaction(self):
        heap = make_heap(heap_mb=100)
        heap.allocate(50 * MB)
        heap.reclaim(0.0, dark_matter_added=1 * MB)
        assert heap.dark_matter_bytes == 1 * MB
        assert heap.used_bytes == 1 * MB
        recovered = heap.compact()
        assert recovered == 1 * MB
        assert heap.dark_matter_bytes == 0

    def test_invalid_survivor_fraction(self):
        heap = make_heap()
        with pytest.raises(ValueError):
            heap.reclaim(1.5, 0)


@settings(max_examples=60, deadline=None)
@given(
    live_mb=st.integers(0, 40),
    allocs=st.lists(st.integers(0, 8 * MB), max_size=30),
    dark_mb=st.integers(0, 2),
)
def test_heap_invariants(live_mb, allocs, dark_mb):
    """used = live + fresh + dark at all times; free never negative
    without an exception; occupancy in [0, 1]."""
    heap = make_heap(heap_mb=128)
    heap.set_live(live_mb * MB)
    for n in allocs:
        try:
            needs_gc = heap.allocate(n)
        except HeapExhaustedError:
            break
        assert heap.used_bytes == (
            heap.live_bytes + heap.allocated_since_gc + heap.dark_matter_bytes
        )
        assert 0.0 <= heap.occupancy <= 1.0
        if needs_gc:
            heap.reclaim(0.0, dark_mb * MB)
    assert heap.free_bytes >= 0


class TestEdgeCases:
    """Sweep/compaction corners: dark-matter saturation, repeated
    zero-survivor sweeps, and compaction as the escape hatch after
    exhaustion."""

    def test_dark_saturation_alone_triggers_gc(self):
        # Fragmentation by itself can eat the free headroom: with no
        # live or fresh bytes at all, enough stranded dark matter must
        # still push the heap over the GC trigger.
        heap = make_heap(heap_mb=100, trigger=0.02)
        heap.allocate(99 * MB)
        heap.reclaim(surviving_fraction=0.0, dark_matter_added=99 * MB)
        assert heap.live_bytes == 0
        assert heap.used_bytes == heap.dark_matter_bytes == 99 * MB
        assert heap.allocate(1) is True  # free (1 MB - 1) < 2 MB trigger

    def test_repeated_zero_survivor_sweeps_accumulate_dark(self):
        heap = make_heap(heap_mb=128)
        for i in range(1, 6):
            heap.allocate(10 * MB)
            freed = heap.reclaim(surviving_fraction=0.0,
                                 dark_matter_added=1 * MB)
            assert freed == 9 * MB
            assert heap.live_bytes == 0
            assert heap.allocated_since_gc == 0
            assert heap.dark_matter_bytes == i * MB

    def test_compact_after_exhaustion_recovers(self):
        heap = make_heap(heap_mb=64)
        heap.set_live(30 * MB)
        heap.allocate(20 * MB)
        heap.reclaim(surviving_fraction=0.0, dark_matter_added=20 * MB)
        with pytest.raises(HeapExhaustedError):
            heap.allocate(15 * MB)  # live 30 + dark 20 + 15 > 64
        assert heap.compact() == 20 * MB
        heap.allocate(15 * MB)  # now fits
        assert heap.used_bytes == 45 * MB

    def test_exhaustion_message_reports_populations(self):
        heap = make_heap(heap_mb=64)
        heap.set_live(40 * MB)
        heap.allocate(10 * MB)
        heap.reclaim(surviving_fraction=0.0, dark_matter_added=10 * MB)
        heap.allocate(5 * MB)
        with pytest.raises(HeapExhaustedError) as exc:
            heap.allocate(20 * MB)
        message = str(exc.value)
        assert f"request of {20 * MB} bytes" in message
        assert f"capacity {64 * MB}" in message
        assert f"live {40 * MB}" in message
        assert f"fresh {5 * MB}" in message
        assert f"dark matter {10 * MB}" in message
        assert f"free {9 * MB}" in message

    def test_failed_allocation_changes_nothing(self):
        heap = make_heap(heap_mb=64)
        heap.set_live(60 * MB)
        before = (heap.live_bytes, heap.allocated_since_gc,
                  heap.dark_matter_bytes)
        with pytest.raises(HeapExhaustedError):
            heap.allocate(10 * MB)
        assert (heap.live_bytes, heap.allocated_since_gc,
                heap.dark_matter_bytes) == before
