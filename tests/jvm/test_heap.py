"""Tests for the flat heap, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GcCostModel, JvmConfig
from repro.jvm.heap import FlatHeap, HeapExhaustedError
from repro.util.units import MB


def make_heap(heap_mb=128, trigger=0.02):
    return FlatHeap(JvmConfig(heap_mb=heap_mb, gc=GcCostModel(trigger_free_fraction=trigger)))


class TestAccounting:
    def test_initial_state(self):
        heap = make_heap()
        assert heap.used_bytes == 0
        assert heap.free_bytes == heap.capacity_bytes

    def test_allocation_accumulates(self):
        heap = make_heap()
        assert not heap.allocate(10 * MB)
        assert heap.used_bytes == 10 * MB

    def test_gc_trigger_when_nearly_full(self):
        heap = make_heap(heap_mb=100)
        heap.set_live(20 * MB)
        assert heap.allocate(79 * MB)  # free < 2% now

    def test_exhaustion_raises(self):
        heap = make_heap(heap_mb=64)
        heap.set_live(60 * MB)
        with pytest.raises(HeapExhaustedError):
            heap.allocate(10 * MB)

    def test_negative_values_rejected(self):
        heap = make_heap()
        with pytest.raises(ValueError):
            heap.allocate(-1)
        with pytest.raises(ValueError):
            heap.set_live(-1)


class TestReclaim:
    def test_reclaim_frees_garbage(self):
        heap = make_heap(heap_mb=100)
        heap.allocate(50 * MB)
        freed = heap.reclaim(surviving_fraction=0.0, dark_matter_added=0)
        assert freed == 50 * MB
        assert heap.allocated_since_gc == 0

    def test_survivors_promote_to_live(self):
        heap = make_heap(heap_mb=100)
        heap.set_live(10 * MB)
        heap.allocate(50 * MB)
        heap.reclaim(surviving_fraction=0.1, dark_matter_added=0)
        assert heap.live_bytes == 15 * MB

    def test_dark_matter_persists_until_compaction(self):
        heap = make_heap(heap_mb=100)
        heap.allocate(50 * MB)
        heap.reclaim(0.0, dark_matter_added=1 * MB)
        assert heap.dark_matter_bytes == 1 * MB
        assert heap.used_bytes == 1 * MB
        recovered = heap.compact()
        assert recovered == 1 * MB
        assert heap.dark_matter_bytes == 0

    def test_invalid_survivor_fraction(self):
        heap = make_heap()
        with pytest.raises(ValueError):
            heap.reclaim(1.5, 0)


@settings(max_examples=60, deadline=None)
@given(
    live_mb=st.integers(0, 40),
    allocs=st.lists(st.integers(0, 8 * MB), max_size=30),
    dark_mb=st.integers(0, 2),
)
def test_heap_invariants(live_mb, allocs, dark_mb):
    """used = live + fresh + dark at all times; free never negative
    without an exception; occupancy in [0, 1]."""
    heap = make_heap(heap_mb=128)
    heap.set_live(live_mb * MB)
    for n in allocs:
        try:
            needs_gc = heap.allocate(n)
        except HeapExhaustedError:
            break
        assert heap.used_bytes == (
            heap.live_bytes + heap.allocated_since_gc + heap.dark_matter_bytes
        )
        assert 0.0 <= heap.occupancy <= 1.0
        if needs_gc:
            heap.reclaim(0.0, dark_mb * MB)
    assert heap.free_bytes >= 0
