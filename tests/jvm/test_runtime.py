"""Tests for the mutator phase-profile builders."""

import random

import pytest

from repro.jvm.runtime import MUTATOR_COMPONENTS, MutatorIntensity, mutator_profiles


@pytest.fixture()
def rng():
    return random.Random(9)


class TestMutatorIntensity:
    def test_blend_weighted_average(self):
        a = MutatorIntensity(stream=2.0, cold=1.0, lock=1.0, shared=1.0)
        b = MutatorIntensity(stream=0.0, cold=3.0, lock=1.0, shared=1.0)
        blended = MutatorIntensity.blend([(a, 1.0), (b, 1.0)])
        assert blended.stream == pytest.approx(1.0)
        assert blended.cold == pytest.approx(2.0)

    def test_blend_empty_is_neutral(self):
        blended = MutatorIntensity.blend([])
        assert blended.stream == 1.0 and blended.lock == 1.0

    def test_blend_zero_weights_is_neutral(self):
        a = MutatorIntensity(stream=5.0)
        assert MutatorIntensity.blend([(a, 0.0)]).stream == 1.0


class TestMutatorProfiles:
    def test_all_components_built(self, rng, quick_registry, quick_space):
        profiles = mutator_profiles(
            quick_registry, quick_space, rng, MutatorIntensity()
        )
        assert set(profiles) == set(MUTATOR_COMPONENTS)

    def test_mixes_normalized(self, rng, quick_registry, quick_space):
        profiles = mutator_profiles(
            quick_registry, quick_space, rng, MutatorIntensity()
        )
        for profile in profiles.values():
            assert sum(w for _, w in profile.load_mix) == pytest.approx(1.0)
            assert sum(w for _, w in profile.store_mix) == pytest.approx(1.0)

    def test_lock_intensity_scales_larx(self, rng, quick_registry, quick_space):
        rng_a, rng_b = random.Random(5), random.Random(5)
        calm = mutator_profiles(
            quick_registry, quick_space, rng_a, MutatorIntensity(lock=1.0)
        )
        locky = mutator_profiles(
            quick_registry, quick_space, rng_b, MutatorIntensity(lock=4.0)
        )
        assert locky["was_jited"].larx_per_instr == pytest.approx(
            calm["was_jited"].larx_per_instr * 4.0
        )

    def test_cold_intensity_shifts_load_mix(self, rng, quick_registry, quick_space):
        rng_a, rng_b = random.Random(6), random.Random(6)
        calm = dict(
            mutator_profiles(
                quick_registry, quick_space, rng_a, MutatorIntensity(cold=1.0)
            )["was_jited"].load_mix
        )
        coldy = dict(
            mutator_profiles(
                quick_registry, quick_space, rng_b, MutatorIntensity(cold=5.0)
            )["was_jited"].load_mix
        )
        assert coldy["heap_cold"] > calm["heap_cold"] * 2

    def test_per_window_variance_exists(self, quick_registry, quick_space):
        """Consecutive windows must differ in their rate parameters —
        the heterogeneity Figure 10's correlations depend on."""
        rng = random.Random(7)
        values = set()
        for _ in range(6):
            p = mutator_profiles(
                quick_registry, quick_space, rng, MutatorIntensity()
            )["was_jited"]
            values.add((p.hard_branch_fraction, p.page_dwell, p.larx_per_instr))
        assert len(values) == 6

    def test_lock_free_rates_stay_sane(self, quick_registry, quick_space):
        """Rates stay bounded even under extreme window draws."""
        rng = random.Random(8)
        for _ in range(50):
            profiles = mutator_profiles(
                quick_registry, quick_space, rng, MutatorIntensity()
            )
            for p in profiles.values():
                assert 0.0 <= p.seq_load_fraction <= 0.9
                assert 0.0 <= p.hard_branch_fraction <= 0.30
                assert p.active_units >= 1
                assert 6.0 <= p.page_dwell <= 60.0
