"""Tests for the method registry and the flat profile shape."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import JvmConfig, MachineConfig
from repro.cpu.regions import AddressSpace
from repro.jvm.methods import (
    HOTTEST_METHOD_NAME,
    JITED_COMPONENT_SHARES,
    MethodRegistry,
    flat_profile_weights,
)


@pytest.fixture(scope="module")
def registry():
    jvm = JvmConfig(n_jited_methods=2000, warm_methods=100)
    space = AddressSpace.build(MachineConfig(), jvm)
    return MethodRegistry(jvm, space, random.Random(1))


class TestFlatProfileWeights:
    def test_normalized(self):
        weights = flat_profile_weights(1000, 50, 0.5, random.Random(0))
        assert sum(weights) == pytest.approx(1.0)

    def test_warm_head_carries_configured_share(self):
        weights = flat_profile_weights(1000, 50, 0.5, random.Random(0))
        assert sum(weights[:50]) == pytest.approx(0.5)

    def test_paper_scale_satisfies_both_constraints(self):
        """At 8500 methods / 224 warm, the hottest stays under 1% and
        the top 224 cover exactly 50% — the two Figure 4 statistics."""
        weights = flat_profile_weights(8500, 224, 0.5, random.Random(0))
        ordered = sorted(weights, reverse=True)
        assert ordered[0] < 0.01
        assert sum(ordered[:224]) >= 0.499

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            flat_profile_weights(10, 10, 0.5, random.Random(0))
        with pytest.raises(ValueError):
            flat_profile_weights(10, 2, 1.5, random.Random(0))

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(50, 3000),
        warm_frac=st.floats(0.02, 0.3),
        share=st.floats(0.3, 0.7),
    )
    def test_shape_properties(self, n, warm_frac, share):
        warm = max(1, int(n * warm_frac))
        weights = flat_profile_weights(n, warm, share, random.Random(2))
        assert len(weights) == n
        assert all(w > 0 for w in weights)
        assert sum(weights) == pytest.approx(1.0)
        assert sum(weights[:warm]) == pytest.approx(share, rel=1e-6)


class TestRegistry:
    def test_population_size(self, registry):
        assert len(registry.methods) == 2000
        assert len(registry.jited_pool) == 2000

    def test_hottest_method_is_the_char_converter(self, registry):
        hottest = registry.methods_by_weight()[0]
        assert hottest.name == HOTTEST_METHOD_NAME
        assert hottest.component == "javalib"

    def test_methods_for_share(self, registry):
        n = registry.methods_for_share(0.5)
        assert 60 <= n <= 160  # near the configured warm head of 100

    def test_top_n_share_monotone(self, registry):
        assert registry.top_n_share(10) < registry.top_n_share(100)
        assert registry.top_n_share(2000) == pytest.approx(1.0)

    def test_component_shares_roughly_match_spec(self, registry):
        for component, expected in JITED_COMPONENT_SHARES:
            share = registry.component_share(component)
            assert share == pytest.approx(expected, abs=0.08)

    def test_jas2004_is_a_small_share(self, registry):
        assert registry.component_share("jas2004") < 0.15

    def test_native_pools_exist(self, registry):
        for component in ("was_nonjited", "web", "db2"):
            pool = registry.native_pool(component)
            assert len(pool) > 0

    def test_methods_have_unique_uids(self, registry):
        uids = [m.unit.uid for m in registry.methods]
        assert len(set(uids)) == len(uids)

    def test_hottest_share_accessor(self, registry):
        assert registry.hottest_share() == pytest.approx(
            registry.methods_by_weight()[0].weight / registry.total_weight()
        )
