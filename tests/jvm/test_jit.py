"""Tests for the JIT compilation timeline."""

import random

import pytest

from repro.config import JvmConfig, MachineConfig
from repro.cpu.regions import AddressSpace
from repro.jvm.jit import JitCompiler
from repro.jvm.methods import MethodRegistry


@pytest.fixture(scope="module")
def jit():
    jvm = JvmConfig(n_jited_methods=500, warm_methods=30)
    space = AddressSpace.build(MachineConfig(), jvm)
    registry = MethodRegistry(jvm, space, random.Random(3))
    return JitCompiler(registry, random.Random(4), methods_per_second=10.0, warmup_delay_s=20.0)


class TestTimeline:
    def test_nothing_compiled_before_delay(self, jit):
        assert jit.compiled_count(10.0) == 0
        assert jit.compiled_weight_fraction(5.0) == 0.0
        assert jit.code_cache_bytes(0.0) == 0

    def test_compilation_progresses(self, jit):
        early = jit.compiled_count(30.0)
        later = jit.compiled_count(60.0)
        assert 0 < early < later

    def test_everything_compiles_eventually(self, jit):
        assert jit.compiled_count(1e6) == 500
        assert jit.compiled_weight_fraction(1e6) == pytest.approx(1.0)

    def test_hot_methods_compile_early(self, jit):
        """Weight fraction grows faster than count fraction: hotter
        methods are queued (noisily) first."""
        t = 35.0
        count_fraction = jit.compiled_count(t) / 500
        weight_fraction = jit.compiled_weight_fraction(t)
        assert weight_fraction > count_fraction

    def test_code_cache_monotone(self, jit):
        sizes = [jit.code_cache_bytes(t) for t in (25.0, 45.0, 90.0, 1e5)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 0

    def test_time_to_compile_fraction(self, jit):
        t50 = jit.time_to_compile_fraction(0.5)
        t90 = jit.time_to_compile_fraction(0.9)
        assert 20.0 < t50 < t90
        assert jit.compiled_weight_fraction(t90) >= 0.85

    def test_invalid_args(self, jit):
        with pytest.raises(ValueError):
            jit.time_to_compile_fraction(0.0)


def test_invalid_rate_rejected(jit):
    with pytest.raises(ValueError):
        JitCompiler(jit.registry, random.Random(0), methods_per_second=0.0)
