"""Tests for the privileged-code (kernel-inclusive) sampling mode.

The paper's HPM data is user-level only, but its Section 4.2.4
privileged-code observation (~7% SYNC-in-SRQ) requires sampling with
kernel slices included — the ``include_kernel`` mode.
"""

import pytest

from repro.core.characterization import Characterization, HardwareSummary
from tests.conftest import make_quick_config


@pytest.fixture(scope="module")
def kernel_study():
    study = Characterization(make_quick_config(seed=606), include_kernel=True)
    study.ensure_warm()
    return study


@pytest.fixture(scope="module")
def user_study():
    study = Characterization(make_quick_config(seed=606))
    study.ensure_warm()
    return study


def summarize(study, n=25):
    samples = study.sample_windows(n)
    return HardwareSummary.from_snapshots([s.snapshot for s in samples])


class TestKernelMode:
    def test_kernel_slices_present(self, kernel_study):
        names = {
            p.name
            for idx in range(10)
            for p, _ in kernel_study.core.schedule.descriptor_for(idx).slices
        }
        assert "kernel" in names

    def test_sync_srq_higher_with_kernel(self, kernel_study, user_study):
        """Privileged code SYNCs an order of magnitude more than user
        code; including it must raise the SRQ occupancy."""
        with_kernel = summarize(kernel_study)
        user_only = summarize(user_study)
        assert with_kernel.sync_srq_fraction > user_only.sync_srq_fraction * 1.3

    def test_user_mode_stays_under_paper_bound(self, user_study):
        assert summarize(user_study).sync_srq_fraction < 0.01

    def test_kernel_mode_still_characterizes(self, kernel_study):
        hw = summarize(kernel_study)
        assert 2.0 < hw.cpi < 5.0
        assert hw.instructions > 0
