"""Whole-stack integration tests.

These run the complete pipeline (workload -> bridge -> CPU -> HPM ->
analysis -> findings -> report) and check cross-layer consistency and
determinism properties no unit test can see.
"""

import dataclasses

import pytest

from repro import Characterization, render_report
from repro.config import SamplingConfig
from repro.hpm.events import Event
from repro.workload.presets import jas2004
from tests.conftest import make_quick_config


class TestFullPipeline:
    def test_report_for_default_jas2004_quickrun(self, quick_study):
        report = quick_study.run(hw_windows=30, correlation_windows_per_group=0)
        text = render_report(report)
        assert "WORKLOAD CHARACTERIZATION REPORT" in text
        assert report.correlations is None  # disabled
        assert report.findings

    def test_window_counters_internally_consistent(self, hw_snapshots):
        for snap in hw_snapshots:
            assert snap[Event.PM_LD_MISS_L1] <= snap[Event.PM_LD_REF_L1]
            assert snap[Event.PM_ST_MISS_L1] <= snap[Event.PM_ST_REF_L1]
            assert snap[Event.PM_BR_MPRED_CR] <= snap[Event.PM_BR_CMPL]
            assert snap[Event.PM_BR_INDIRECT] <= snap[Event.PM_BR_CMPL]
            assert snap[Event.PM_DTLB_MISS] <= snap[Event.PM_DERAT_MISS]
            assert snap[Event.PM_ITLB_MISS] <= snap[Event.PM_IERAT_MISS]
            assert snap[Event.PM_STCX_FAIL] <= snap[Event.PM_STCX]
            assert snap[Event.PM_SYNC_SRQ_CYC] <= snap[Event.PM_CYC]
            assert snap[Event.PM_CYC_INST_CMPL] <= snap[Event.PM_CYC]
            assert snap[Event.PM_INST_DISP] >= snap[Event.PM_INST_CMPL]

    def test_data_source_counts_equal_load_misses(self, hw_snapshots):
        """Every L1D load miss is satisfied from exactly one source."""
        from repro.hpm.events import DATA_SOURCE_EVENTS

        for snap in hw_snapshots:
            sources = sum(snap[e] for e in DATA_SOURCE_EVENTS)
            assert sources == snap[Event.PM_LD_MISS_L1]

    def test_windows_hit_cycle_budget(self, hw_snapshots, quick_config):
        budget = quick_config.sampling.window_cycles
        for snap in hw_snapshots:
            assert budget <= snap.cycles <= budget * 1.35


class TestDeterminism:
    def test_full_study_reproducible(self):
        cfg = make_quick_config(seed=321)

        def run():
            study = Characterization(cfg)
            report = study.run(hw_windows=12, correlation_windows_per_group=0)
            return (
                report.hardware.cpi,
                report.hardware.l1d_miss_rate,
                report.benchmark.jops,
                report.gc.collections,
            )

        assert run() == run()

    def test_seed_changes_results(self):
        a = Characterization(make_quick_config(seed=1)).run(
            hw_windows=8, correlation_windows_per_group=0
        )
        b = Characterization(make_quick_config(seed=2)).run(
            hw_windows=8, correlation_windows_per_group=0
        )
        assert a.hardware.cpi != b.hardware.cpi


class TestScaleRobustness:
    def test_window_size_does_not_break_ratios(self):
        """Counter *ratios* should be stable across window sizes (the
        scale-invariance DESIGN.md relies on)."""
        results = {}
        for cycles in (15000, 30000):
            cfg = dataclasses.replace(
                make_quick_config(seed=77),
                sampling=SamplingConfig(window_cycles=cycles, warmup_windows=4),
            )
            study = Characterization(cfg)
            samples = study.sample_windows(30)
            agg = samples[0].snapshot
            for s in samples[1:]:
                agg = agg.merged_with(s.snapshot)
            results[cycles] = agg
        small, large = results[15000], results[30000]
        # Window length changes per-window working-set churn, so only
        # coarse invariance holds (which is why the quick test config
        # pins window_cycles to the benchmark value).
        assert small.cpi == pytest.approx(large.cpi, rel=0.35)
        assert small.l1d_load_miss_rate == pytest.approx(
            large.l1d_load_miss_rate, rel=0.4
        )

    def test_higher_ir_loads_the_system_harder(self):
        from repro.workload.metrics import evaluate_run
        from repro.workload.sut import SystemUnderTest

        low = jas2004(ir=25, duration_s=200.0)
        high = jas2004(ir=45, duration_s=200.0)
        r_low = evaluate_run(SystemUnderTest(low).run())
        r_high = evaluate_run(SystemUnderTest(high).run())
        assert r_high.utilization > r_low.utilization + 0.2
