"""The public API surface: imports, exports, version."""

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_path(self):
        """The README's quickstart snippet works verbatim (scaled)."""
        from repro import Characterization, render_report
        from repro.experiments.common import quick_config

        report = Characterization(quick_config()).run(
            hw_windows=10, correlation_windows_per_group=0
        )
        text = render_report(report)
        assert "WORKLOAD CHARACTERIZATION REPORT" in text

    def test_core_exports(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_cli_module_importable(self):
        from repro.cli import build_parser

        assert build_parser() is not None
