"""Tests for the supervised process pool (timeouts, crashes, retries)."""

import os
import time
from pathlib import Path

import pytest

from repro.experiments.supervisor import (
    DEFAULT_POLICY,
    SupervisedOutcome,
    SupervisorPolicy,
    TaskFailedError,
    TaskStats,
    supervise,
)

#: A fast-retry policy so failure tests don't sleep for real.
FAST = SupervisorPolicy(
    max_attempts=3, backoff_base_s=0.0, backoff_cap_s=0.0, jitter=0.0
)


def _claim(path: str) -> bool:
    """First caller (across processes) wins; later callers lose."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


# Top-level so they pickle into pool workers.
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _flaky(arg):
    marker, x = arg
    if _claim(marker):
        raise RuntimeError("transient failure")
    return x * 10


def _kill_once(arg):
    marker, x = arg
    if _claim(marker):
        os._exit(99)
    return x + 1


def _hang_once(arg):
    marker, seconds, x = arg
    if _claim(marker):
        time.sleep(seconds)
    return x - 1


class TestPolicy:
    def test_backoff_field_names_match_retry_policy(self):
        """The duck-typing contract with workload.faults.backoff_delay_s."""
        from repro.config import RetryPolicy

        for name in ("backoff_base_s", "backoff_factor", "backoff_cap_s", "jitter"):
            assert hasattr(RetryPolicy(), name)
            assert hasattr(DEFAULT_POLICY, name)

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(task_timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(pool_failure_limit=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(jitter=1.0)


class TestHappyPath:
    def test_results_in_task_order(self):
        outcome = supervise(_square, list(range(7)), jobs=3, policy=FAST)
        assert outcome.results == [x * x for x in range(7)]
        assert outcome.pool_failures == 0
        assert not outcome.degraded_serial
        assert all(s.attempts == 1 and s.retries == 0 for s in outcome.stats)

    def test_serial_jobs_one(self):
        outcome = supervise(_square, [3, 4], jobs=1, policy=FAST)
        assert outcome.results == [9, 16]

    def test_empty_tasks(self):
        outcome = supervise(_square, [], jobs=2, policy=FAST)
        assert outcome.results == []
        assert outcome.stats == []

    def test_on_result_fires_per_completion(self):
        seen = []
        supervise(
            _square,
            [1, 2, 3],
            jobs=2,
            policy=FAST,
            on_result=lambda i, value, st: seen.append((i, value, st.attempts)),
        )
        assert sorted(seen) == [(0, 1, 1), (1, 4, 1), (2, 9, 1)]


class TestErrorRetry:
    def test_transient_error_retried(self, tmp_path):
        marker = str(tmp_path / "flaky")
        outcome = supervise(_flaky, [(marker, 7)], jobs=2, policy=FAST)
        assert outcome.results == [70]
        assert outcome.stats[0].attempts == 2
        assert outcome.stats[0].retries == 1
        assert outcome.stats[0].errors == 1

    def test_deterministic_error_exhausts_budget(self):
        with pytest.raises(TaskFailedError) as err:
            supervise(_boom, [1], jobs=2, policy=FAST)
        assert err.value.index == 0
        assert err.value.stats.attempts == FAST.max_attempts
        assert isinstance(err.value.__cause__, ValueError)

    def test_serial_path_retries_too(self, tmp_path):
        marker = str(tmp_path / "flaky-serial")
        outcome = supervise(_flaky, [(marker, 3)], jobs=1, policy=FAST)
        assert outcome.results == [30]
        assert outcome.stats[0].retries == 1


class TestWorkerCrash:
    def test_killed_worker_recovered(self, tmp_path):
        marker = str(tmp_path / "kill")
        tasks = [(marker, x) for x in range(4)]
        outcome = supervise(_kill_once, tasks, jobs=2, policy=FAST)
        assert outcome.results == [x + 1 for x in range(4)]
        assert outcome.pool_failures == 1
        assert sum(s.worker_crashes for s in outcome.stats) >= 1

    def test_degrades_to_serial_after_pool_failure_limit(self, tmp_path):
        policy = SupervisorPolicy(
            max_attempts=4,
            backoff_base_s=0.0,
            backoff_cap_s=0.0,
            jitter=0.0,
            pool_failure_limit=1,
        )
        marker = str(tmp_path / "kill-degrade")
        tasks = [(marker, x) for x in range(3)]
        outcome = supervise(_kill_once, tasks, jobs=2, policy=policy)
        # One crash trips the limit; the survivors run serially
        # in-process (where _claim's marker already exists, so the
        # retried task completes normally).
        assert outcome.results == [x + 1 for x in range(3)]
        assert outcome.degraded_serial
        assert outcome.pool_failures == 1


class TestTimeout:
    def test_hung_task_times_out_and_retries(self, tmp_path):
        policy = SupervisorPolicy(
            task_timeout_s=0.8,
            max_attempts=3,
            backoff_base_s=0.0,
            backoff_cap_s=0.0,
            jitter=0.0,
        )
        marker = str(tmp_path / "hang")
        tasks = [(marker, 3.0, x) for x in range(2)]
        outcome = supervise(_hang_once, tasks, jobs=2, policy=policy)
        assert outcome.results == [x - 1 for x in range(2)]
        assert sum(s.timeouts for s in outcome.stats) == 1
        assert outcome.pool_failures == 1

    def test_fast_tasks_unaffected_by_timeout_policy(self):
        policy = SupervisorPolicy(
            task_timeout_s=30.0, backoff_base_s=0.0, backoff_cap_s=0.0, jitter=0.0
        )
        outcome = supervise(_square, [1, 2, 3, 4], jobs=2, policy=policy)
        assert outcome.results == [1, 4, 9, 16]
        assert all(s.timeouts == 0 for s in outcome.stats)


class TestOutcomeShape:
    def test_stats_align_with_tasks(self):
        outcome = supervise(_square, [5, 6], jobs=2, policy=FAST)
        assert isinstance(outcome, SupervisedOutcome)
        assert len(outcome.stats) == 2
        assert all(isinstance(s, TaskStats) for s in outcome.stats)
