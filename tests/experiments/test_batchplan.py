"""The sweep-scale batch planner: plan, shard, pack, scatter."""

import dataclasses

import pytest

from repro.config import BranchPredictorConfig, CacheGeometry
from repro.core.characterization import Characterization
from repro.core.windowstore import store_key
from repro.experiments.batchplan import (
    collect_demands,
    demand_weight,
    execute_shard,
    plan_shards,
    plan_sweep,
    recipe_windows,
)
from repro.experiments.common import WindowDemand, hw_recipe
from tests.conftest import make_quick_config


def _small_l1d_config():
    """Same workload, different machine geometry (its own pack key)."""
    cfg = make_quick_config()
    machine = dataclasses.replace(
        cfg.machine, l1d=CacheGeometry(16 * 1024, 128, 2, "fifo")
    )
    return dataclasses.replace(cfg, machine=machine)


def _ineligible_config():
    """A non-power-of-two predictor table fails ``vector_supported``."""
    cfg = make_quick_config()
    machine = dataclasses.replace(
        cfg.machine, branch=BranchPredictorConfig(direction_entries=1000)
    )
    return dataclasses.replace(cfg, machine=machine)


class TestRecipes:
    def test_hw_recipe_windows(self, quick_config):
        study = Characterization(quick_config)
        assert recipe_windows(study, "hw:0:5") == [0, 1, 2, 3, 4]
        assert recipe_windows(study, "hw:10:3") == [10, 11, 12]

    def test_seg_recipe_windows_match_segment_enumeration(self, quick_config):
        from repro.experiments.hpm_segment import segment_windows

        study = Characterization(quick_config)
        want = segment_windows(study.core.schedule, 10, 2, 0)
        assert recipe_windows(study, "seg:0:10:2") == want

    def test_unknown_recipe_raises(self, quick_config):
        study = Characterization(quick_config)
        with pytest.raises(ValueError, match="recipe"):
            recipe_windows(study, "bogus:1")


class TestDemandWeight:
    def test_hw_weight_is_lane_count(self):
        assert demand_weight("hw:0:40") == 40
        assert demand_weight("hw:20:5") == 5

    def test_seg_weight_estimates_gc_span(self):
        assert demand_weight("seg:0:80:3") == 80 + 6 * 3

    def test_unknown_recipe_raises(self):
        with pytest.raises(ValueError, match="recipe"):
            demand_weight("bogus:1")


class TestCollectDemands:
    def test_shared_segment_campaign_deduplicated(self):
        # Figures 5, 6 and 7 all sample the same baseline segment: the
        # planner must schedule that campaign exactly once.
        entries = [
            ("Figure 5", "fig05_cpi", {}),
            ("Figure 6", "fig06_branch", {}),
            ("Figure 7", "fig07_tlb", {}),
        ]
        demands = collect_demands(make_quick_config(), entries)
        assert len(demands) == 1
        assert demands[0].recipe.startswith("seg:")

    def test_plain_modules_contribute_nothing(self):
        demands = collect_demands(
            make_quick_config(), [("Figure 3", "fig03_gc", {})]
        )
        assert demands == []

    def test_run_kwargs_flow_into_the_demands(self):
        entries = [("Figure 5", "fig05_cpi", {"n_mutator": 12})]
        (demand,) = collect_demands(make_quick_config(), entries)
        assert demand.recipe == "seg:0:12:3"


class TestPlanShards:
    def _demands(self):
        base = make_quick_config()
        heavy = dataclasses.replace(base, seed=base.seed + 1)
        light = dataclasses.replace(base, seed=base.seed + 2)
        return [
            WindowDemand(base, hw_recipe(60)),
            WindowDemand(base, hw_recipe(40)),
            WindowDemand(heavy, hw_recipe(110)),
            WindowDemand(light, hw_recipe(50)),
        ]

    def test_configs_stay_together_and_balance(self):
        shards = plan_shards(self._demands(), jobs=2)
        assert len(shards) == 2
        loads = sorted(
            sum(demand_weight(d.recipe) for d in shard) for shard in shards
        )
        # LPT: heavy group (110) alone, base (100) + light (50) together.
        assert loads == [110, 150]
        for shard in shards:
            keys = {store_key(d.config, d.recipe)[0] for d in shard}
            if len(shard) > 1:
                assert len(keys) <= 2

    def test_jobs_capped_by_config_groups(self):
        shards = plan_shards(self._demands(), jobs=8)
        assert len(shards) == 3  # only three distinct configs

    def test_single_job_single_shard(self):
        shards = plan_shards(self._demands(), jobs=1)
        assert len(shards) == 1 and len(shards[0]) == 4

    def test_empty_plan(self):
        assert plan_shards([], jobs=4) == []

    def test_plan_sweep_enumerates_and_shards(self):
        entries = [("Figure 5", "fig05_cpi", {"n_mutator": 10})]
        plan = plan_sweep(make_quick_config(), entries, jobs=2)
        assert len(plan.demands) == 1
        assert plan.planned_lanes == demand_weight(plan.demands[0].recipe)
        assert len(plan.shards) == 1


class TestExecuteShard:
    """Packed shard execution ≡ per-config vector engines, bit for bit."""

    @pytest.fixture(scope="class")
    def outcome_and_demands(self):
        demands = [
            WindowDemand(make_quick_config(), hw_recipe(3)),
            WindowDemand(_small_l1d_config(), hw_recipe(2)),
            WindowDemand(_ineligible_config(), hw_recipe(2)),
        ]
        return execute_shard((0, demands)), demands

    def test_pack_accounting(self, outcome_and_demands):
        outcome, _ = outcome_and_demands
        assert outcome.planned_lanes == 7
        assert outcome.packed_lanes == 5  # the ineligible config degrades
        # Different machine geometries never share a packed engine.
        assert len(outcome.batches) == 2
        assert {b["lanes"] for b in outcome.batches} == {3, 2}

    def test_sims_cover_every_config(self, outcome_and_demands):
        outcome, demands = outcome_and_demands
        assert len(outcome.sims) == 3
        want = [store_key(d.config, d.recipe)[0] for d in demands]
        got = [store_key(cfg, d.recipe)[0]
               for (cfg, _res), d in zip(outcome.sims, demands)]
        assert got == want

    def test_ineligible_config_has_no_payload(self, outcome_and_demands):
        outcome, demands = outcome_and_demands
        keys = {key for key, _snaps in outcome.payloads}
        assert store_key(demands[2].config, demands[2].recipe) not in keys
        assert len(keys) == 2

    def test_payloads_bit_identical_to_inline_vector_path(
        self, outcome_and_demands
    ):
        outcome, demands = outcome_and_demands
        payloads = dict(outcome.payloads)
        for demand in demands[:2]:
            study = Characterization(demand.config)
            windows = recipe_windows(study, demand.recipe)
            want = study.sample_window_list(windows, demand.recipe)
            got = payloads[store_key(demand.config, demand.recipe)]
            assert len(got) == len(want)
            for lane, ((_desc, w), g) in enumerate(zip(want, got)):
                assert dict(g.counts) == dict(w.counts), (
                    f"{demand.recipe} lane {lane} diverged"
                )
