"""Tests for the resumable-sweep journal."""

import dataclasses
import json

import pytest

from repro.experiments.journal import JOURNAL_KIND, JOURNAL_SCHEMA, SweepJournal
from repro.runcache import config_key
from tests.conftest import make_quick_config


def _cfg(seed: int = 2007):
    return make_quick_config(seed=seed)


def _record(module: str, **extra):
    rec = {"module": module, "title": module, "lines": [f"{module} line"]}
    rec.update(extra)
    return rec


class TestCreateAppendRecover:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cfg = _cfg()
        with SweepJournal.open(path, cfg) as journal:
            assert journal.completed == {}
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["kind"] == JOURNAL_KIND
        assert header["config_key"] == config_key(cfg)
        assert header["seed"] == cfg.seed

    def test_reopen_restores_completed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cfg = _cfg()
        with SweepJournal.open(path, cfg) as journal:
            journal.append(_record("fig02_throughput"))
            journal.append(_record("fig03_gc"))
        with SweepJournal.open(path, cfg) as journal:
            assert set(journal.completed) == {"fig02_throughput", "fig03_gc"}
            assert journal.completed["fig03_gc"]["lines"] == ["fig03_gc line"]

    def test_append_requires_module(self, tmp_path):
        with SweepJournal.open(tmp_path / "j.jsonl", _cfg()) as journal:
            with pytest.raises(ValueError):
                journal.append({"title": "no module key"})

    def test_append_after_close_raises(self, tmp_path):
        journal = SweepJournal.open(tmp_path / "j.jsonl", _cfg())
        journal.close()
        with pytest.raises(ValueError):
            journal.append(_record("fig02_throughput"))

    def test_duplicate_module_keeps_last(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cfg = _cfg()
        with SweepJournal.open(path, cfg) as journal:
            journal.append(_record("fig02_throughput", lines=["old"]))
            journal.append(_record("fig02_throughput", lines=["new"]))
        with SweepJournal.open(path, cfg) as journal:
            assert journal.completed["fig02_throughput"]["lines"] == ["new"]


class TestStaleRotation:
    def test_config_mismatch_rotates_stale(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cfg = _cfg()
        other = dataclasses.replace(
            cfg, workload=dataclasses.replace(cfg.workload, duration_s=600.0)
        )
        assert config_key(cfg) != config_key(other)
        with SweepJournal.open(path, cfg) as journal:
            journal.append(_record("fig02_throughput"))
        with SweepJournal.open(path, other) as journal:
            assert journal.completed == {}
        assert (tmp_path / "sweep.jsonl.stale").exists()

    def test_seed_mismatch_rotates_stale(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.open(path, _cfg(seed=1)):
            pass
        with SweepJournal.open(path, _cfg(seed=2)) as journal:
            assert journal.completed == {}
        assert path.with_name(path.name + ".stale").exists()

    def test_garbage_file_rotated_not_trusted(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("this is not a journal\n")
        with SweepJournal.open(path, _cfg()) as journal:
            assert journal.completed == {}
        # Fresh journal starts with a valid header.
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == JOURNAL_KIND


class TestTornWrites:
    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cfg = _cfg()
        with SweepJournal.open(path, cfg) as journal:
            journal.append(_record("fig02_throughput"))
            journal.append(_record("fig03_gc"))
        # Simulate a crash mid-write: append half a JSON line.
        with path.open("a") as fh:
            fh.write('{"module": "fig04_profi')
        with SweepJournal.open(path, cfg) as journal:
            assert set(journal.completed) == {"fig02_throughput", "fig03_gc"}
            # And the journal is still appendable after recovery.
            journal.append(_record("fig04_profile"))
        with SweepJournal.open(path, cfg) as journal:
            assert "fig04_profile" in journal.completed


class TestResumeEndToEnd:
    @pytest.mark.slow
    def test_resumed_report_byte_identical(self, tmp_path, monkeypatch):
        """Kill a sweep halfway (by journal surgery), resume, compare."""
        monkeypatch.delenv("REPRO_RUN_CACHE_DIR", raising=False)
        from repro.experiments import reproduce_all
        from repro.runcache import set_default_cache

        cfg = _cfg()
        subset = ["fig02_throughput", "fig03_gc", "tab_utilization"]

        set_default_cache(None)
        clean = reproduce_all.run(config=cfg, only=subset)
        clean_lines = clean.render_lines(include_timing=False)

        # Full journaled run, then drop the last record to simulate a
        # crash after two experiments had been journaled.
        path = tmp_path / "sweep.jsonl"
        set_default_cache(None)
        reproduce_all.run(config=cfg, only=subset, journal=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + len(subset)
        path.write_text("\n".join(lines[:-1]) + "\n")

        set_default_cache(None)
        resumed = reproduce_all.run(config=cfg, only=subset, journal=path)
        assert len(resumed.resumed) == len(subset) - 1
        assert resumed.render_lines(include_timing=False) == clean_lines
