"""Integration tests: every figure experiment reproduces the paper's
shape at test scale.

Each test asserts (a) the experiment runs and renders, and (b) the
load-bearing paper-vs-measured rows hold.  Rows that are noise-prone at
test scale are checked as "mostly ok" rather than individually.
"""

import pytest

from repro.experiments import (
    fig02_throughput,
    fig03_gc,
    fig04_profile,
    fig05_cpi,
    fig06_branch,
    fig07_tlb,
    fig08_l1d,
    fig09_sources,
    fig10_correlation,
)
from tests.conftest import make_quick_config


def ok_labels(result):
    return {r.label for r in result.rows() if r.ok}


def off_labels(result):
    return {r.label for r in result.rows() if r.ok is False}


@pytest.fixture(scope="module")
def config():
    return make_quick_config()


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig02_throughput.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_series_shape(self, result):
        assert set(result.series) == {"Browse", "Purchase", "Manage", "WorkOrder"}
        assert all(len(v) == len(result.times) for v in result.series.values())

    def test_render(self, result):
        text = "\n".join(result.render_lines())
        assert "Figure 2" in text and "JOPS" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig03_gc.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_summary_values(self, result):
        assert 22 <= result.summary.mean_period_s <= 32
        assert result.summary.compactions == 0

    def test_render(self, result):
        text = "\n".join(result.render_lines())
        assert "Garbage Collection" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig04_profile.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_render(self, result):
        text = "\n".join(result.render_lines())
        assert "Profile Breakdown" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig05_cpi.run(config, n_mutator=30, n_gc_events=3)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_idle_vs_loaded(self, result):
        assert result.idle_cpi < result.cpi / 2

    def test_render(self, result):
        assert "Figure 5" in "\n".join(result.render_lines())


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig06_branch.run(config, n_mutator=30, n_gc_events=3)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_gc_contrast_measured(self, result):
        assert result.branches_per_instr_gc is not None
        assert result.branches_per_instr_gc > result.branches_per_instr_mutator


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig07_tlb.run(config, n_mutator=30, n_gc_events=3)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_ordering(self, result):
        assert result.derat_per_instr > result.dtlb_per_instr
        assert result.ierat_per_instr > result.itlb_per_instr

    def test_gc_drops_tlb_misses(self, result):
        assert result.dtlb_gc_ratio is not None
        assert result.dtlb_gc_ratio < 0.1


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig08_l1d.run(config, n_mutator=30, n_gc_events=3)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_store_worse_than_load(self, result):
        assert result.store_miss > result.load_miss


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig09_sources.run(config, hw_windows=24, with_contrasts=True)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_tpcw_contrast(self, result):
        assert result.tpcw_modified_share > 0.02
        assert result.modified_share < 0.01
        assert result.tpcw_modified_share > result.modified_share * 5

    def test_topology_contrast(self, result):
        assert result.l25_single_mcm > 0.0


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig10_correlation.run(config, windows_per_group=60)

    def test_most_rows_ok(self, result):
        """r estimates at 60 windows/group carry sampling noise; the
        full bench uses 110+.  Require the decisive majority."""
        rows = result.rows()
        n_ok = sum(1 for r in rows if r.ok)
        assert n_ok >= len(rows) - 2

    def test_signs_of_the_poles(self, result):
        from repro.hpm.events import Event

        assert result.report.r_of(Event.PM_CYC_INST_CMPL) < -0.3
        assert result.report.r_of(Event.PM_DATA_FROM_MEM) > 0.0

    def test_render(self, result):
        text = "\n".join(result.render_lines())
        assert "CPI Statistical Correlation" in text
