"""Integration tests for the extension experiments: what-if ablation,
processor scaling, the tuning walk, and the cluster deployment."""

import pytest

from repro.experiments import exp_cluster, exp_scaling, exp_tuning, exp_whatif
from tests.conftest import make_quick_config

#: Campaign sweeps (the methodology ablation alone re-runs the Figure
#: 10 study several times) — full-CI tier, not tier-1.
pytestmark = pytest.mark.slow


def off_labels(result):
    return {r.label for r in result.rows() if r.ok is False}


@pytest.fixture(scope="module")
def config():
    return make_quick_config()


class TestWhatIfAblation:
    @pytest.fixture(scope="class")
    def result(self, config):
        return exp_whatif.run(config, hw_windows=30)

    def test_directions_agree(self, result):
        off = off_labels(result)
        # Allow at most one noise-driven disagreement at test scale.
        assert len(off) <= 1, off

    def test_faster_l3_validates(self, result):
        outcome = result.outcomes["faster-l3"]
        assert outcome.simulated_delta < -0.05
        assert outcome.estimate.cpi_delta < -0.05

    def test_render(self, result):
        assert "What-If" in "\n".join(result.render_lines())


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self, config):
        return exp_scaling.run(config, hw_windows=20)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_throughput_monotone_sublinear(self, result):
        jops = [result.points[c].jops for c in (2, 4, 8, 16)]
        assert jops == sorted(jops)
        assert jops[-1] / result.points[4].jops < 4.0

    def test_l25_only_with_multi_chip_mcm(self, result):
        assert result.points[4].l25_share == 0.0
        assert result.points[8].l25_share > 0.0

    def test_render(self, result):
        assert "Processor Scaling" in "\n".join(result.render_lines())


class TestTuningWalk:
    @pytest.fixture(scope="class")
    def result(self, config):
        return exp_tuning.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_untuned_thrashes_in_gc(self, result):
        assert result.steps["untuned"].report.gc_fraction > 0.05
        assert result.steps["+heap"].report.gc_fraction < 0.03

    def test_final_state_matches_paper_calibration(self, result):
        tuned = result.steps["+ramdisk"].report
        assert tuned.passed
        assert tuned.jops_per_ir == pytest.approx(1.6, abs=0.15)

    def test_render(self, result):
        assert "Tuning Walk" in "\n".join(result.render_lines())


class TestCluster:
    @pytest.fixture(scope="class")
    def result(self, config):
        return exp_cluster.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_single_server_preferred_at_equal_cores(self, result):
        equal = result.clusters["equal-cores"]
        assert result.single.jops >= equal.jops * 0.97

    def test_scaled_out_recovers(self, result):
        assert result.clusters["scaled-out"].passed

    def test_blade_gc_counts(self, result):
        equal = result.clusters["equal-cores"]
        assert sum(equal.gc_events_per_blade) > result.single.gc_count

    def test_render(self, result):
        assert "Blade Cluster" in "\n".join(result.render_lines())


class TestHeapSweep:
    @pytest.fixture(scope="class")
    def result(self, config):
        from repro.experiments import exp_heap_sweep

        return exp_heap_sweep.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_blackburn_regime(self, result):
        assert result.points[256].gc_fraction > 0.05
        assert not result.points[256].passed

    def test_paper_regime(self, result):
        assert result.points[1024].gc_fraction < 0.02
        assert result.points[1024].passed

    def test_render(self, result):
        assert "Heap Size" in "\n".join(result.render_lines())


class TestMethodologyAblation:
    @pytest.fixture(scope="class")
    def result(self, config):
        from repro.experiments import exp_methodology

        return exp_methodology.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_convergence(self, result):
        budgets = sorted(result.deviation)
        assert result.deviation[budgets[-1]] < result.deviation[budgets[0]]

    def test_render(self, result):
        assert "Sampling Budget" in "\n".join(result.render_lines())


class TestWarmup:
    @pytest.fixture(scope="class")
    def result(self, config):
        from repro.experiments import exp_warmup

        return exp_warmup.run(config, hw_windows=20)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_interpreter_dominates_early_misses(self, result):
        assert (
            result.early.target_mispredict_rate
            > result.late.target_mispredict_rate * 1.5
        )

    def test_steady_state_unaffected(self, result):
        """Late-run hardware numbers stay in the calibrated bands."""
        assert 2.4 < result.late.cpi < 3.8
        assert result.late.target_mispredict_rate < 0.25

    def test_render(self, result):
        assert "JIT Warm-Up" in "\n".join(result.render_lines())
