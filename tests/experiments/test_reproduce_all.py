"""Tests for the full-reproduction sweep driver."""

import pytest

from repro.experiments.reproduce_all import CATALOG, run
from tests.conftest import make_quick_config


class TestCatalog:
    def test_covers_every_paper_figure(self):
        titles = [title for title, _, _ in CATALOG]
        for n in range(2, 11):
            assert any(f"Figure {n}" == t for t in titles)

    def test_module_names_resolve(self):
        import importlib

        for _, module_name, _ in CATALOG:
            module = importlib.import_module(
                f"repro.experiments.{module_name}"
            )
            assert hasattr(module, "run")


class TestSubsetRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run(
            make_quick_config(),
            only=["fig03_gc", "fig04_profile", "tab_locking"],
        )

    def test_records_match_subset(self, result):
        assert set(result.records) == {"fig03_gc", "fig04_profile", "tab_locking"}

    def test_row_accounting(self, result):
        assert result.rows_total == sum(
            r.rows_total for r in result.records.values()
        )
        assert len(result.rows_off) == sum(
            len(r.rows_off) for r in result.records.values()
        )

    def test_summary_renders(self, result):
        text = "\n".join(result.summary_lines())
        assert "FULL REPRODUCTION SWEEP" in text
        assert "Figure 3" in text

    def test_full_render_includes_experiment_bodies(self, result):
        text = "\n".join(result.render_lines())
        assert "Garbage Collection Statistics" in text
        assert "Locking" in text

    def test_summary_reports_cache_and_jobs(self, result):
        text = "\n".join(result.summary_lines())
        assert "run cache:" in text
        assert "jobs: 1" in text


class TestOnlyValidation:
    def test_unknown_module_raises_with_valid_names(self):
        with pytest.raises(ValueError) as err:
            run(make_quick_config(), only=["fig03_gc", "fig99_nope"])
        message = str(err.value)
        assert "fig99_nope" in message
        # The error teaches the valid vocabulary.
        assert "fig03_gc" in message and "exp_resilience" in message

    def test_typo_does_not_yield_clean_empty_sweep(self):
        with pytest.raises(ValueError):
            run(make_quick_config(), only=["fig03-gc"])


@pytest.mark.slow
class TestParallelSweep:
    """jobs=N must be a pure wall-clock optimization."""

    SUBSET = ["fig02_throughput", "fig03_gc", "tab_utilization"]

    @pytest.fixture(scope="class")
    def serial(self):
        return run(make_quick_config(), only=self.SUBSET)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run(make_quick_config(), only=self.SUBSET, jobs=4)

    def test_report_byte_identical_to_serial(self, serial, parallel):
        assert parallel.render_lines(include_timing=False) == serial.render_lines(
            include_timing=False
        )

    def test_records_in_catalog_order(self, serial, parallel):
        assert list(parallel.records) == list(serial.records) == self.SUBSET

    def test_rows_accounting_matches(self, serial, parallel):
        assert parallel.rows_total == serial.rows_total
        assert parallel.rows_off == serial.rows_off
