"""Tests for the full-reproduction sweep driver."""

import json

import pytest

from repro.experiments.reproduce_all import (
    CATALOG,
    SWEEP_STATS_SCHEMA,
    ReproduceAllResult,
    ReproductionRecord,
    load_stats_dict,
    run,
)
from tests.conftest import make_quick_config


class TestCatalog:
    def test_covers_every_paper_figure(self):
        titles = [title for title, _, _ in CATALOG]
        for n in range(2, 11):
            assert any(f"Figure {n}" == t for t in titles)

    def test_module_names_resolve(self):
        import importlib

        for _, module_name, _ in CATALOG:
            module = importlib.import_module(
                f"repro.experiments.{module_name}"
            )
            assert hasattr(module, "run")


class TestSubsetRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run(
            make_quick_config(),
            only=["fig03_gc", "fig04_profile", "tab_locking"],
        )

    def test_records_match_subset(self, result):
        assert set(result.records) == {"fig03_gc", "fig04_profile", "tab_locking"}

    def test_row_accounting(self, result):
        assert result.rows_total == sum(
            r.rows_total for r in result.records.values()
        )
        assert len(result.rows_off) == sum(
            len(r.rows_off) for r in result.records.values()
        )

    def test_summary_renders(self, result):
        text = "\n".join(result.summary_lines())
        assert "FULL REPRODUCTION SWEEP" in text
        assert "Figure 3" in text

    def test_full_render_includes_experiment_bodies(self, result):
        text = "\n".join(result.render_lines())
        assert "Garbage Collection Statistics" in text
        assert "Locking" in text

    def test_summary_reports_cache_and_jobs(self, result):
        text = "\n".join(result.summary_lines())
        assert "run cache:" in text
        assert "jobs: 1" in text


class TestOnlyValidation:
    def test_unknown_module_raises_with_valid_names(self):
        with pytest.raises(ValueError) as err:
            run(make_quick_config(), only=["fig03_gc", "fig99_nope"])
        message = str(err.value)
        assert "fig99_nope" in message
        # The error teaches the valid vocabulary.
        assert "fig03_gc" in message and "exp_resilience" in message

    def test_typo_does_not_yield_clean_empty_sweep(self):
        with pytest.raises(ValueError):
            run(make_quick_config(), only=["fig03-gc"])


class TestStatsSchema:
    @pytest.fixture(scope="class")
    def result(self):
        return run(make_quick_config(), only=["fig03_gc"])

    def test_stats_carry_schema_and_supervision_fields(self, result):
        stats = result.stats_dict()
        assert stats["schema"] == SWEEP_STATS_SCHEMA
        assert stats["resumed"] == []
        assert stats["pool_failures"] == 0
        assert stats["degraded"] is False
        entry = stats["per_experiment"]["fig03_gc"]
        assert entry["attempts"] == 1
        assert entry["retries"] == 0
        assert entry["timed_out"] == 0

    def test_round_trips_through_json(self, result):
        stats = result.stats_dict()
        reloaded = load_stats_dict(json.loads(json.dumps(stats)))
        assert reloaded == stats

    def test_v1_document_migrates_with_defaults(self):
        legacy = {
            "wall_clock_s": 12.5,
            "jobs": 4,
            "experiments": 1,
            "per_experiment": {
                "fig03_gc": {"seconds": 12.5, "rows": 5, "off": 0}
            },
        }
        migrated = load_stats_dict(legacy)
        assert migrated["schema"] == SWEEP_STATS_SCHEMA
        assert migrated["resumed"] == []
        assert migrated["pool_failures"] == 0
        assert migrated["degraded"] is False
        entry = migrated["per_experiment"]["fig03_gc"]
        assert entry["attempts"] == 1
        assert entry["retries"] == 0
        assert entry["timed_out"] == 0
        # Original fields survive; the input is not mutated.
        assert entry["seconds"] == 12.5
        assert "schema" not in legacy

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            load_stats_dict({"schema": 99})


class TestJournalRecordRoundTrip:
    def test_lossless(self):
        record = ReproductionRecord(
            title="Figure 3",
            module="fig03_gc",
            seconds=1.25,
            rows_total=5,
            rows_off=["minor GC count"],
            lines=["line one", "line two"],
            cache_hits=2,
            cache_misses=1,
            attempts=3,
            retries=2,
            timed_out=1,
        )
        doc = json.loads(json.dumps(record.to_journal_dict()))
        assert ReproductionRecord.from_journal_dict(doc) == record

    def test_defaults_for_pre_supervisor_journal_lines(self):
        doc = {
            "title": "Figure 3",
            "module": "fig03_gc",
            "seconds": 1.0,
            "rows_total": 5,
            "rows_off": [],
            "lines": ["body"],
        }
        record = ReproductionRecord.from_journal_dict(doc)
        assert record.attempts == 1
        assert record.retries == 0
        assert record.timed_out == 0


class TestPackedStats:
    def test_schema_2_document_gains_pack_defaults(self):
        legacy = {
            "schema": 2,
            "wall_clock_s": 5.0,
            "jobs": 2,
            "experiments": 1,
            "resumed": [],
            "pool_failures": 0,
            "degraded": False,
            "per_experiment": {},
        }
        migrated = load_stats_dict(legacy)
        assert migrated["schema"] == SWEEP_STATS_SCHEMA
        assert migrated["packed"] is False
        assert migrated["batches"] == []
        assert migrated["planned_lanes"] == 0
        assert migrated["packed_lanes"] == 0
        assert migrated["pack_efficiency"] == 1.0
        assert "packed" not in legacy

    def test_v1_document_gains_pack_defaults_too(self):
        migrated = load_stats_dict(
            {"wall_clock_s": 1.0, "jobs": 1, "experiments": 0,
             "per_experiment": {}}
        )
        assert migrated["packed"] is False
        assert migrated["pack_efficiency"] == 1.0

    def test_unpacked_stats_carry_pack_fields(self):
        result = run(make_quick_config(), only=["fig03_gc"])
        stats = result.stats_dict()
        assert stats["packed"] is False
        assert stats["planned_lanes"] == 0
        assert stats["pack_efficiency"] == 1.0

    def test_pack_efficiency_property(self):
        result = ReproduceAllResult(
            config=make_quick_config(),
            records={},
            total_seconds=0.0,
            packed=True,
            planned_lanes=200,
            packed_lanes=150,
        )
        assert result.pack_efficiency == pytest.approx(0.75)
        result.planned_lanes = 0
        assert result.pack_efficiency == 1.0


@pytest.mark.slow
class TestPackedSweep:
    """The batch planner is scheduling only: reports stay byte-identical
    to a serial ``--engine vector`` sweep of the same config."""

    SUBSET = ["fig05_cpi", "fig07_tlb", "fig03_gc"]

    @pytest.fixture(scope="class")
    def serial_vector(self):
        from repro.cpu.engine import set_default_engine

        set_default_engine("vector")
        try:
            return run(make_quick_config(), only=self.SUBSET)
        finally:
            set_default_engine(None)

    @pytest.fixture(scope="class")
    def packed(self):
        return run(make_quick_config(), only=self.SUBSET, packed=True)

    def test_report_byte_identical_to_serial_vector(
        self, serial_vector, packed
    ):
        assert packed.render_lines(include_timing=False) == (
            serial_vector.render_lines(include_timing=False)
        )

    def test_packed_accounting_present(self, packed):
        assert packed.packed is True
        assert packed.engine == "vector"
        # figs 5 and 7 share one deduplicated segment campaign.
        assert packed.planned_lanes > 0
        assert packed.packed_lanes == packed.planned_lanes
        assert len(packed.batches) >= 1
        stats = packed.stats_dict()
        assert stats["packed"] is True
        assert stats["pack_efficiency"] == 1.0
        assert stats["batches"][0]["lanes"] > 0

    def test_records_in_catalog_order(self, serial_vector, packed):
        assert list(packed.records) == list(serial_vector.records)


@pytest.mark.slow
class TestParallelSweep:
    """jobs=N must be a pure wall-clock optimization."""

    SUBSET = ["fig02_throughput", "fig03_gc", "tab_utilization"]

    @pytest.fixture(scope="class")
    def serial(self):
        return run(make_quick_config(), only=self.SUBSET)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run(make_quick_config(), only=self.SUBSET, jobs=4)

    def test_report_byte_identical_to_serial(self, serial, parallel):
        assert parallel.render_lines(include_timing=False) == serial.render_lines(
            include_timing=False
        )

    def test_records_in_catalog_order(self, serial, parallel):
        assert list(parallel.records) == list(serial.records) == self.SUBSET

    def test_rows_accounting_matches(self, serial, parallel):
        assert parallel.rows_total == serial.rows_total
        assert parallel.rows_off == serial.rows_off
