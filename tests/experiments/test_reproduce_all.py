"""Tests for the full-reproduction sweep driver."""

import pytest

from repro.experiments.reproduce_all import CATALOG, run
from tests.conftest import make_quick_config


class TestCatalog:
    def test_covers_every_paper_figure(self):
        titles = [title for title, _, _ in CATALOG]
        for n in range(2, 11):
            assert any(f"Figure {n}" == t for t in titles)

    def test_module_names_resolve(self):
        import importlib

        for _, module_name, _ in CATALOG:
            module = importlib.import_module(
                f"repro.experiments.{module_name}"
            )
            assert hasattr(module, "run")


class TestSubsetRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run(
            make_quick_config(),
            only=["fig03_gc", "fig04_profile", "tab_locking"],
        )

    def test_records_match_subset(self, result):
        assert set(result.records) == {"fig03_gc", "fig04_profile", "tab_locking"}

    def test_row_accounting(self, result):
        assert result.rows_total == sum(
            r.rows_total for r in result.records.values()
        )
        assert len(result.rows_off) == sum(
            len(r.rows_off) for r in result.records.values()
        )

    def test_summary_renders(self, result):
        text = "\n".join(result.summary_lines())
        assert "FULL REPRODUCTION SWEEP" in text
        assert "Figure 3" in text

    def test_full_render_includes_experiment_bodies(self, result):
        text = "\n".join(result.render_lines())
        assert "Garbage Collection Statistics" in text
        assert "Locking" in text
