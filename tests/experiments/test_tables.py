"""Integration tests for the in-text table experiments."""

import pytest

from repro.experiments import (
    tab_baselines,
    tab_large_pages,
    tab_locking,
    tab_utilization,
)
from tests.conftest import make_quick_config


def off_labels(result):
    return {r.label for r in result.rows() if r.ok is False}


@pytest.fixture(scope="module")
def config():
    return make_quick_config()


class TestUtilization:
    @pytest.fixture(scope="class")
    def result(self, config):
        return tab_utilization.run(config)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_ir_sweep_monotone(self, result):
        assert result.ir47.utilization > result.ir40.utilization

    def test_disk_story(self, result):
        assert result.ram_disk.passed
        assert not result.two_disks.passed
        assert result.many_disks.passed

    def test_render(self, result):
        assert "Utilization" in "\n".join(result.render_lines())


class TestLargePages:
    @pytest.fixture(scope="class")
    def result(self, config):
        return tab_large_pages.run(config, hw_windows=20)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_variant_ordering(self, result):
        small = result.variants["small"]
        heap = result.variants["heap"]
        code = result.variants["code"]
        assert heap.dtlb_miss_per_instr < small.dtlb_miss_per_instr
        assert code.itlb_miss_per_instr < heap.itlb_miss_per_instr

    def test_render(self, result):
        assert "Large Pages" in "\n".join(result.render_lines())


class TestLocking:
    @pytest.fixture(scope="class")
    def result(self, config):
        return tab_locking.run(config, n_mutator=24, n_gc_events=4)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_kernel_sync_much_higher_than_user(self, result):
        assert result.sync_srq_kernel > result.sync_srq_user * 4

    def test_render(self, result):
        assert "Locking" in "\n".join(result.render_lines())


class TestBaselines:
    @pytest.fixture(scope="class")
    def result(self, config):
        return tab_baselines.run(config, baseline_duration_s=200.0)

    def test_all_rows_ok(self, result):
        assert not off_labels(result)

    def test_contrast_direction(self, result):
        jas = result.contrasts["jas2004"]
        jbb = result.contrasts["jbb2000"]
        assert jbb.gc_percent > jas.gc_percent
        assert jbb.profile.hottest_share > jas.profile.hottest_share * 5

    def test_render(self, result):
        assert "Simple Java Benchmarks" in "\n".join(result.render_lines())
