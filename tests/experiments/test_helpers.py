"""Tests for the experiment-layer helpers: Row tables and the
GC-aware HPM segment sampler."""

import pytest

from repro.experiments.common import Row, fmt, header, within
from repro.experiments.hpm_segment import Segment, TaggedWindow, sample_segment


class TestRow:
    def test_render_marks(self):
        ok = Row("metric", "~1", "1.01", ok=True).render()
        off = Row("metric", "~1", "9.0", ok=False).render()
        plain = Row("metric", "~1", "1.0").render()
        assert "[ok]" in ok
        assert "[OFF]" in off
        assert "[" not in plain

    def test_fmt(self):
        assert fmt(3.14159, 2) == "3.14"
        assert fmt(5, unit="x") == "5x"
        assert fmt(0.5, 1, "%") == "0.5%"

    def test_within(self):
        assert within(1.0, 0.5, 1.5)
        assert not within(2.0, 0.5, 1.5)

    def test_header(self):
        lines = header("Title")
        assert "Title" in lines
        assert lines[1].startswith("=")


class TestSegmentSampler:
    @pytest.fixture(scope="class")
    def segment(self, quick_study):
        return sample_segment(quick_study, n_mutator=20, n_gc_events=2)

    def test_contains_both_populations(self, segment):
        assert len(segment.mutator) >= 15
        assert len(segment.gc) >= 1

    def test_gc_windows_flagged_correctly(self, segment):
        for window in segment.gc:
            assert window.gc_fraction >= 0.5
        for window in segment.mutator:
            assert window.gc_fraction < 0.5

    def test_values_align_with_windows(self, segment):
        cpis = segment.values(lambda s: s.cpi)
        assert len(cpis) == len(segment.windows)
        assert all(c > 0 for c in cpis)

    def test_mean_over_pool(self, segment):
        overall = segment.mean(lambda s: s.cpi)
        mut = segment.mean(lambda s: s.cpi, segment.mutator)
        assert overall > 0 and mut > 0

    def test_mean_empty_pool_raises(self, segment):
        with pytest.raises(ValueError):
            segment.mean(lambda s: s.cpi, [])

    def test_no_duplicate_windows(self, segment):
        indices = [w.window_index for w in segment.windows]
        assert len(indices) == len(set(indices))


class TestSegmentContainer:
    def test_partitioning(self):
        from repro.hpm.counters import CounterSnapshot

        snap = CounterSnapshot(counts={})
        windows = [
            TaggedWindow(0, snap, 0.0),
            TaggedWindow(1, snap, 0.9),
            TaggedWindow(2, snap, 0.4),
        ]
        segment = Segment(windows=windows)
        assert [w.window_index for w in segment.gc] == [1]
        assert [w.window_index for w in segment.mutator] == [0, 2]
        assert segment.gc_fractions() == [0.0, 0.9, 0.4]
