"""Tests for the object-centric profiling experiment
(:mod:`repro.experiments.exp_objprof`).

The acceptance criteria of the objprof layer, end to end: exact byte
reconciliation, every sampled miss attributed, a golden-stable top-N
ranking under the fixed seed, and what-if predictions whose direction
a real re-simulation confirms.
"""

import json

import pytest

from repro.experiments import exp_objprof
from repro.obs import objprof
from tests.conftest import make_quick_config

#: The quick-config seed-2007 ranking.  Pinned: the ranking is a
#: deterministic function of the seed, and downstream what-ifs key off
#: the top entry, so silent reshuffles must fail loudly.
GOLDEN_RANKING = [
    "session_state",
    "cache_entries",
    "jdbc_rows",
    "string_churn",
    "collection_temp",
]


@pytest.fixture(scope="module")
def profile_result():
    return exp_objprof.run(make_quick_config(), hw_windows=12, validate=False)


class TestProfileRun:
    def test_ledger_reconciles_exactly(self, profile_result):
        assert profile_result.reconciliation == {
            "fresh": True, "dark": True, "live": True
        }

    def test_every_sampled_miss_is_charged(self, profile_result):
        charged = profile_result.profile.total(objprof.SLOT_LD_MISS)
        assert charged >= profile_result.sampled_ld_misses > 0

    def test_golden_top_ranking(self, profile_result):
        top = profile_result.profile.top_inefficient(5)
        assert [r.site.name for r in top] == GOLDEN_RANKING

    def test_ranking_repeatable_under_fixed_seed(self, profile_result):
        again = exp_objprof.run(
            make_quick_config(), hw_windows=12, validate=False
        )
        assert again.profile.to_dict(5) == profile_result.profile.to_dict(5)

    def test_windowed_delta_counts_second_half(self, profile_result):
        counters = profile_result.windowed["counters"]
        ld_keys = [k for k in counters if k.startswith("objprof.site.ld_miss")]
        assert ld_keys
        assert all(counters[k] >= 0 for k in ld_keys)
        assert sum(counters[k] for k in ld_keys) > 0

    def test_estimates_without_validation(self, profile_result):
        assert set(profile_result.estimates) == {
            "shrink-top-site", "segregate-churn"
        }
        assert profile_result.outcomes == {}
        # Both enhancements are predicted to help (negative CPI delta).
        for est in profile_result.estimates.values():
            assert est.cpi_delta < 0

    def test_render_and_dict_round(self, profile_result):
        lines = profile_result.render_lines()
        text = "\n".join(lines)
        assert "Object-Centric Heap Profile" in text
        assert "session_state" in text
        assert "[ok]" in text and "[OFF]" not in text
        doc = profile_result.to_dict()
        assert doc["ranking"] == GOLDEN_RANKING
        assert doc["reconciliation"] == {
            "fresh": True, "dark": True, "live": True
        }
        json.dumps(doc)  # JSON-serializable for the CLI --json path


class TestWhatIfValidation:
    """The DJXPerf claim: the object-centric prediction points the
    same way a real re-simulation of the enhanced config moves."""

    @pytest.fixture(scope="class")
    def validated(self):
        # CPI deltas of a few hundredths need more windows than a site
        # ranking does; validate_windows decouples the two budgets.
        return exp_objprof.run(
            make_quick_config(),
            hw_windows=12,
            top_n=3,
            validate=True,
            validate_windows=80,
        )

    def test_shrink_top_site_direction_confirmed(self, validated):
        outcome = validated.outcomes["shrink-top-site"]
        assert outcome.estimate.cpi_delta < 0
        assert outcome.simulated_delta < 0
        assert outcome.direction_agrees

    def test_all_rows_pass(self, validated):
        rows = validated.rows()
        assert len(rows) == 2 + len(validated.outcomes)
        assert all(row.ok for row in rows)

    def test_dict_carries_simulated_deltas(self, validated):
        doc = validated.to_dict()
        whatif = doc["whatif"]["shrink-top-site"]
        assert whatif["simulated_cpi_delta"] is not None
        assert whatif["direction_agrees"] is True
