"""Tests for the chaos layer and the full crash-safety acceptance path."""

import json
import os

import pytest

from repro.experiments import chaos
from tests.conftest import make_quick_config


@pytest.fixture
def fresh_default_cache():
    """Reset the process-wide cache before and after the test.

    The acceptance test points ``REPRO_RUN_CACHE_DIR`` at a tmp dir;
    without the reset, a cache bound earlier (or left behind) would
    leak across tests — and on Linux, forked pool workers inherit the
    parent's populated memory tier, which would mask the disk-tier
    self-healing path entirely.
    """
    from repro.runcache import set_default_cache

    set_default_cache(None)
    yield
    set_default_cache(None)


class TestSpecParsing:
    def test_unset_env_is_inactive(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        assert chaos.load_spec() is None
        assert not chaos.chaos_active()

    def test_invalid_json_is_inactive(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "{not json")
        assert chaos.load_spec() is None

    def test_non_object_json_is_inactive(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "[1, 2]")
        assert chaos.load_spec() is None

    def test_valid_spec_parses(self, monkeypatch):
        monkeypatch.setenv(
            chaos.ENV_VAR, json.dumps({"dir": "/tmp/x", "kill": {"fig03_gc": 1}})
        )
        spec = chaos.load_spec()
        assert spec["kill"] == {"fig03_gc": 1}


class TestFaultPoint:
    def test_inert_outside_pool_worker(self, tmp_path, monkeypatch):
        """An armed kill spec must never fire in the parent process."""
        monkeypatch.setenv(
            chaos.ENV_VAR,
            json.dumps({"dir": str(tmp_path), "kill": {"anything": 5}}),
        )
        monkeypatch.setattr(chaos, "_IS_POOL_WORKER", False)
        chaos.fault_point("kill", "anything")  # would os._exit if armed
        assert list(tmp_path.iterdir()) == []

    def test_inert_without_spec(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        monkeypatch.setattr(chaos, "_IS_POOL_WORKER", True)
        chaos.fault_point("kill", "anything")

    def test_hang_budget_is_exactly_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            chaos.ENV_VAR,
            json.dumps({"dir": str(tmp_path), "hang": {"t": 1}, "hang_s": 0.01}),
        )
        monkeypatch.setattr(chaos, "_IS_POOL_WORKER", True)
        chaos.fault_point("hang", "t")
        assert (tmp_path / "hang.t.0").exists()
        before = sorted(p.name for p in tmp_path.iterdir())
        chaos.fault_point("hang", "t")  # budget spent: no new marker
        assert sorted(p.name for p in tmp_path.iterdir()) == before

    def test_budget_counts_slots(self, tmp_path):
        assert chaos._claim(str(tmp_path), "kill", "x", 2)
        assert chaos._claim(str(tmp_path), "kill", "x", 2)
        assert not chaos._claim(str(tmp_path), "kill", "x", 2)

    def test_missing_marker_dir_disarms(self, tmp_path):
        assert not chaos._claim(str(tmp_path / "gone"), "kill", "x", 1)


class TestCorruption:
    def test_corrupt_entry_flips_one_bit(self, tmp_path):
        target = tmp_path / "e.pkl"
        original = bytes(range(64)) * 4
        target.write_bytes(original)
        chaos.corrupt_entry(target)
        mutated = target.read_bytes()
        assert len(mutated) == len(original)
        diff = [i for i, (a, b) in enumerate(zip(original, mutated)) if a != b]
        assert len(diff) == 1
        assert diff[0] == len(original) * 3 // 4

    def test_corrupt_empty_file_raises(self, tmp_path):
        target = tmp_path / "empty.pkl"
        target.write_bytes(b"")
        with pytest.raises(ValueError):
            chaos.corrupt_entry(target)

    def test_corrupt_one_requires_entries(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            chaos.corrupt_one(tmp_path)

    def test_corrupt_one_picks_first_sorted(self, tmp_path):
        (tmp_path / "bb.pkl").write_bytes(b"x" * 32)
        (tmp_path / "aa.pkl").write_bytes(b"y" * 32)
        assert chaos.corrupt_one(tmp_path) == "aa.pkl"


@pytest.mark.slow
class TestChaosAcceptance:
    """The ISSUE acceptance scenario, end to end, in one process.

    Worker killed mid-experiment + a second worker hanging past its
    timeout + one disk-cache entry bit-flipped: the resumable pooled
    sweep must still exit cleanly with a report byte-identical to a
    clean serial run, quarantining and recomputing the rotten entry
    along the way.
    """

    SUBSET = ["fig02_throughput", "fig03_gc", "fig04_profile", "tab_utilization"]

    def test_acceptance(self, tmp_path, monkeypatch, fresh_default_cache):
        from repro.experiments.reproduce_all import run
        from repro.experiments.supervisor import SupervisorPolicy
        from repro.runcache import (
            QUARANTINE_DIRNAME,
            gc_cache_dir,
            set_default_cache,
            verify_cache_dir,
        )

        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(cache_dir))
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        cfg = make_quick_config()

        # Clean serial baseline; populates the disk cache tier.
        clean = run(config=cfg, only=self.SUBSET)
        clean_lines = clean.render_lines(include_timing=False)
        assert sorted(cache_dir.glob("*.pkl"))

        # Chaos: bit-flip one entry, arm a worker kill and a hang.
        corrupted = chaos.corrupt_one(cache_dir)
        markers = tmp_path / "markers"
        markers.mkdir()
        monkeypatch.setenv(
            chaos.ENV_VAR,
            json.dumps(
                {
                    "dir": str(markers),
                    "kill": {"fig03_gc": 1},
                    "hang": {"fig04_profile": 1},
                    "hang_s": 6.0,
                }
            ),
        )
        # Drop the parent's memory tier: forked workers inherit it, and
        # a warm memory tier would hide the corrupted disk entry.
        set_default_cache(None)

        journal = tmp_path / "sweep.jsonl"
        result = run(
            config=cfg,
            only=self.SUBSET,
            jobs=2,
            journal=journal,
            policy=SupervisorPolicy(
                task_timeout_s=2.5,
                backoff_base_s=0.05,
                backoff_cap_s=0.1,
                jitter=0.0,
            ),
        )

        # Byte-identical report despite a kill, a hang and bit rot.
        assert result.render_lines(include_timing=False) == clean_lines
        assert list(result.records) == self.SUBSET
        # Both injections fired and each cost one pool teardown.
        assert (markers / "kill.fig03_gc.0").exists()
        assert (markers / "hang.fig04_profile.0").exists()
        assert result.pool_failures == 2
        assert not result.degraded
        assert result.records["fig04_profile"].timed_out == 1
        assert result.total_retries >= 2

        # The rotten entry was quarantined during the sweep and healed
        # in place (live bytes valid again).
        quarantine = cache_dir / QUARANTINE_DIRNAME
        assert any(quarantine.glob("*.pkl"))
        report = verify_cache_dir(cache_dir)
        assert report.corrupt == []  # live entries all pass
        assert corrupted in report.quarantined
        assert not report.passed  # dirty until the backlog is cleared

        removed = gc_cache_dir(cache_dir)
        assert removed["quarantined"] >= 1
        assert verify_cache_dir(cache_dir).passed

        # The journal recorded every experiment; a resume-after-success
        # run restores all four without recomputation and renders the
        # same bytes.
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + len(self.SUBSET)
        set_default_cache(None)
        monkeypatch.delenv(chaos.ENV_VAR)
        resumed = run(config=cfg, only=self.SUBSET, jobs=2, journal=journal)
        assert set(resumed.resumed) == set(self.SUBSET)
        assert resumed.render_lines(include_timing=False) == clean_lines
