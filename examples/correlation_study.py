#!/usr/bin/env python
"""The Section 4.3 methodology, step by step.

Shows the analytical tools the paper builds its diagnosis on, plus the
natural extensions:

1. the *CPI correlation study* — cycle hpmstat through its eight
   counter groups (one at a time, as the hardware forces), correlate
   every event's per-window counts with CPI, and rank the bars
   (Figure 10);
2. *vertical profiling* — align the HPM series with the GC log and
   test which events move with collections (the Figures 6-8 GC
   contrasts), including recovering the GC period from the hardware
   series alone;
3. *regression decomposition* — go beyond pairwise correlation and
   estimate the exposed cycle cost of each event, then attribute a
   window's cycles to causes;
4. *sample files* — the whole pipeline works from hpmstat-style CSV
   files, so real counter data can be analyzed the same way.

Usage::

    python examples/correlation_study.py
"""

from repro.core.characterization import Characterization
from repro.core.correlation import CpiCorrelationStudy
from repro.core.vertical import dominant_period, gc_alignment
from repro.experiments.common import quick_config
from repro.experiments.hpm_segment import sample_segment
from repro.hpm.events import Event


def correlation_part(study: Characterization) -> None:
    print("=== 1. CPI correlation study (Figure 10) ===")
    print("(one counter group at a time, 60 windows each)\n")
    report = CpiCorrelationStudy(study.hpm).run(windows_per_group=60)
    for label, r in report.bars():
        n = int(round(abs(r) * 14))
        bar = ("#" * n).rjust(14) + "|" if r < 0 else "|" + "#" * n
        print(f"  {label:24s} {bar:<30s} {r:+.2f}")
    print()
    print("  special pairs the paper calls out:")
    print(f"    r(target mispred, icache miss) = {report.r_target_miss_vs_icache_miss:+.2f}")
    print(f"    r(speculation, L1D miss rate)  = {report.r_speculation_vs_l1_miss:+.2f}")
    print(f"    r(branches, target mispred)    = {report.r_branches_vs_target_miss:+.2f}")
    print(f"    r(cond mispred, branches)      = {report.r_cond_miss_vs_branches:+.2f}")
    print()


def vertical_part(study: Characterization) -> None:
    print("=== 2. Vertical profiling: aligning HPM series with the GC log ===\n")
    segment = sample_segment(study, n_mutator=60, n_gc_events=4)
    gc_fracs = segment.gc_fractions()

    checks = [
        ("branches/instr", lambda s: s[Event.PM_BR_CMPL] / max(1, s.instructions), "+ (more during GC)"),
        ("cond mispredict rate", lambda s: s.branch_mispredict_rate, "- (fewer during GC)"),
        ("DTLB misses/instr", lambda s: s[Event.PM_DTLB_MISS] / max(1, s.instructions), "- (large pages)"),
        ("store miss rate", lambda s: s.l1d_store_miss_rate, "- (mark bitmap)"),
        ("CPI", lambda s: s.cpi, "~0 (no strong correlation)"),
    ]
    print(f"  {'series':>22} {'r(series, GC)':>14}  expectation")
    for name, fn, expectation in checks:
        alignment = gc_alignment(segment.values(fn), gc_fracs)
        print(f"  {name:>22} {alignment.r_with_gc:>+14.2f}  {expectation}")

    # Recover the GC period from the workload timeline itself.
    result = study.result
    t0, t1 = result.steady_window()
    gc_ms = [r.gc_ms for r in result.timeline.records
             if t0 <= r.index * result.timeline.tick_s < t1]
    found = dominant_period(gc_ms, result.timeline.tick_s, 15.0, 40.0)
    if found:
        print(
            f"\n  dominant period of the GC-activity series: "
            f"{found[0]:.1f}s (autocorrelation {found[1]:.2f}) — "
            "the paper's 25-28 s collector rhythm"
        )


def decomposition_part(study: Characterization) -> None:
    print("\n=== 3. Regression decomposition: where do the cycles go? ===\n")
    from repro.core.regression import decompose_cpi

    samples = study.sample_windows(100, start=4000)
    model = decompose_cpi([s.snapshot for s in samples])
    for line in model.render_lines():
        print(f"  {line}")
    shares = model.cycle_share(samples[0].snapshot)
    top = sorted(shares.items(), key=lambda kv: -kv[1])[:4]
    print("  one window's cycles, attributed:")
    for name, share in top:
        print(f"    {name:22s} {share * 100:5.1f}%")


def files_part(study: Characterization) -> None:
    print("\n=== 4. The same pipeline over sample files ===\n")
    import io

    from repro.hpm.io import read_samples, write_samples

    samples = study.sample_windows(6, start=5000)
    buffer = io.StringIO()
    write_samples(samples, buffer)
    n_lines = buffer.getvalue().count("\n")
    buffer.seek(0)
    loaded = read_samples(buffer)
    print(f"  wrote {n_lines} CSV lines, reloaded {len(loaded)} samples;")
    print(f"  first window CPI from file: {loaded[0].snapshot.cpi:.2f}")
    print("  (export real hpmstat data into this format and every")
    print("   analysis in repro.core runs on it unchanged)")


def main() -> None:
    study = Characterization(quick_config())
    study.ensure_warm()
    correlation_part(study)
    vertical_part(study)
    decomposition_part(study)
    files_part(study)


if __name__ == "__main__":
    main()
