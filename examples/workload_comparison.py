#!/usr/bin/env python
"""Contrast study: jas2004 vs the simple Java benchmarks.

The paper's recurring argument is that conclusions drawn from small
Java benchmarks (SPECjvm98, SPECjbb2000) do not transfer to a real
3-tier J2EE system: small benchmarks have hot methods, GC-dominated
runtimes and JVM-bound profiles; jas2004 has none of those.  And unlike
Java TPC-W (Cain et al.), jas2004 has almost no modified cache-to-cache
traffic.

This example characterizes all four workload presets with the *same*
rule base and prints which optimization opportunities apply to which
workload — the punchline being that they differ.

Usage::

    python examples/workload_comparison.py
"""

import dataclasses

from repro import Characterization
from repro.config import SamplingConfig
from repro.workload.presets import jas2004, jbb2000_like, jvm98_like, tpcw_like

SAMPLING = SamplingConfig(window_cycles=20000, warmup_windows=6)


def characterize(name, config):
    config = dataclasses.replace(config, sampling=SAMPLING)
    study = Characterization(config)
    return study.run(hw_windows=40, correlation_windows_per_group=0)


def main() -> None:
    presets = [
        ("jas2004", jas2004(duration_s=420.0)),
        ("jbb2000", jbb2000_like(duration_s=300.0)),
        ("jvm98", jvm98_like(duration_s=240.0)),
        ("tpcw", tpcw_like(duration_s=300.0)),
    ]
    reports = [(name, characterize(name, cfg)) for name, cfg in presets]

    print("=== Measured characteristics ===")
    print(
        f"{'workload':>9} {'heap':>6} {'GC%':>6} {'hottest':>8} "
        f"{'meth@50%':>9} {'CPI':>5} {'mem op/instr':>13} {'mod c2c%':>9}"
    )
    for name, r in reports:
        print(
            f"{name:>9} {r.config.jvm.heap_mb:>5}M "
            f"{r.gc.percent_of_runtime * 100:>5.1f}% "
            f"{r.profile.hottest_share * 100:>7.1f}% "
            f"{r.profile.items_for_half:>9} "
            f"{r.hardware.cpi:>5.2f} "
            f"{r.hardware.memory_ops_per_instr:>13.2f} "
            f"{r.hardware.modified_remote_share * 100:>8.2f}%"
        )

    print("\n=== Which findings fire where ===")
    all_ids = sorted({f.id for _, r in reports for f in r.findings})
    header = f"{'finding':>32} " + "".join(f"{name:>9}" for name, _ in reports)
    print(header)
    for finding_id in all_ids:
        row = f"{finding_id:>32} "
        for _, r in reports:
            fired = any(f.id == finding_id for f in r.findings)
            row += f"{'x' if fired else '.':>9}"
        print(row)

    print("\nExpected contrasts (the paper's Section 5):")
    print(" * flat-profile fires only for the J2EE workloads;")
    print(" * gc-not-a-bottleneck holds for jas2004's 1 GB heap but the")
    print("   small-heap benchmarks show gc-significant;")
    print(" * co-scheduling-promising fires only for the TPC-W-like preset.")


if __name__ == "__main__":
    main()
