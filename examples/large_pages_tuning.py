#!/usr/bin/env python
"""Tuning study: what do 16 MB pages buy, and where next?

Reproduces the paper's Section 4.2.2 ablation as a tuning workflow:

1. baseline: 4 KB pages everywhere;
2. the paper's system: the Java heap (and GC structures) in 16 MB
   pages — DTLB hit rates rise ~25%, and because the TLB is unified,
   ITLB hit rates rise ~15% too;
3. the paper's proposed next step: JIT-compiled code in large pages,
   cutting the remaining ITLB misses.

Usage::

    python examples/large_pages_tuning.py
"""

from repro.experiments import tab_large_pages
from repro.experiments.common import quick_config


def main() -> None:
    result = tab_large_pages.run(quick_config(), hw_windows=40)
    print("\n".join(result.render_lines()))

    small = result.variants["small"]
    heap = result.variants["heap"]
    code = result.variants["code"]
    print()
    print("Tuning recommendation:")
    dtlb_gain = (heap.dtlb_hit_rate - small.dtlb_hit_rate) / small.dtlb_hit_rate
    print(
        f" * enable 16 MB pages for the heap: DTLB hit rate "
        f"{small.dtlb_hit_rate * 100:.1f}% -> {heap.dtlb_hit_rate * 100:.1f}% "
        f"({dtlb_gain * 100:+.1f}%), CPI {small.cpi:.2f} -> {heap.cpi:.2f}"
    )
    itlb_cut = 1.0 - code.itlb_miss_per_instr / max(1e-12, heap.itlb_miss_per_instr)
    print(
        f" * then map the JIT code cache into large pages: "
        f"{itlb_cut * 100:.0f}% fewer ITLB misses "
        f"({heap.itlb_miss_per_instr:.2e} -> {code.itlb_miss_per_instr:.2e} "
        f"per instruction)"
    )


if __name__ == "__main__":
    main()
