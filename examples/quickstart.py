#!/usr/bin/env python
"""Quickstart: characterize the jas2004-like workload end to end.

Runs the full pipeline the paper describes — tune/run the workload,
sample the hardware performance monitor, run the correlation study —
and prints the complete characterization report: benchmark metrics,
the Figure 3 GC table, the Figure 4 profile breakdown, the hardware
summary, the Figure 10 correlation bars, and the derived findings.

Usage::

    python examples/quickstart.py [--full]

The default is a scaled 5-minute virtual run (~15 s wall clock);
``--full`` runs the paper's 60-minute configuration (a few minutes).
"""

import sys
import time

from repro import Characterization, render_report
from repro.experiments.common import bench_config, quick_config
from repro.workload.presets import jas2004


def main() -> None:
    if "--full" in sys.argv:
        config = jas2004(duration_s=3600.0)
        hw_windows, corr_windows = 150, 120
        print("Running the paper-scale configuration (60 virtual minutes)...")
    elif "--bench" in sys.argv:
        config = bench_config()
        hw_windows, corr_windows = 100, 80
    else:
        config = quick_config()
        hw_windows, corr_windows = 60, 40
        print("Running the quick configuration (5 virtual minutes);")
        print("pass --full for the paper-scale 60-minute run.\n")

    started = time.time()
    study = Characterization(config)
    report = study.run(
        hw_windows=hw_windows, correlation_windows_per_group=corr_windows
    )
    elapsed = time.time() - started

    print(render_report(report))

    # What would help?  Rank the paper's proposed enhancements.
    from repro.core.whatif import WhatIfAnalyzer

    analyzer = WhatIfAnalyzer()
    estimates = analyzer.estimate_all(
        report.hardware, config.machine.latencies
    )
    print()
    print("\n".join(analyzer.render_lines(estimates)))
    print(f"\n(characterization completed in {elapsed:.1f}s wall clock)")


if __name__ == "__main__":
    main()
