#!/usr/bin/env python
"""Capacity planning: how far does this SUT scale, and on what storage?

The paper's Section 4.1 shows the two knobs an operator actually turns:
the injection rate (how much load the 4-core box sustains before
response times blow past the 2 s / 5 s deadlines) and the database
storage (two hard disks fail; a RAM disk or 'more disks' passes).

This example sweeps both and prints the operating envelope — the same
methodology a deployment team would use to size a jas2004 submission.

Usage::

    python examples/capacity_planning.py
"""

import dataclasses

from repro.config import DiskConfig
from repro.workload.metrics import evaluate_run
from repro.workload.presets import jas2004
from repro.workload.sut import SystemUnderTest

DURATION_S = 420.0


def run_point(ir: int, disk: DiskConfig):
    config = jas2004(ir=ir, duration_s=DURATION_S, disk=disk)
    return evaluate_run(SystemUnderTest(config).run())


def sweep_injection_rate() -> None:
    print("=== Injection-rate sweep (RAM disk) ===")
    print(f"{'IR':>4} {'JOPS':>7} {'JOPS/IR':>8} {'CPU%':>6} "
          f"{'p90 web':>8} {'p90 rmi':>8} {'verdict':>8}")
    for ir in (20, 30, 40, 44, 47, 52):
        report = run_point(ir, DiskConfig.ram_disk())
        print(
            f"{ir:>4} {report.jops:>7.1f} {report.jops_per_ir:>8.2f} "
            f"{report.utilization * 100:>6.1f} "
            f"{report.p90_web_s:>8.2f} {report.p90_rmi_s:>8.2f} "
            f"{'PASS' if report.passed else 'FAIL':>8}"
        )
    print()
    print("The paper: ~90% CPU at IR 40, ~100% at IR 47, ~1.6 JOPS/IR.")
    print()


def sweep_disks() -> None:
    print("=== Storage sweep (IR 40) ===")
    print(f"{'storage':>16} {'disk busy':>10} {'I/O queue':>10} "
          f"{'rejected':>9} {'verdict':>8}")
    points = [("RAM disk", DiskConfig.ram_disk())] + [
        (f"{n} hard disks", DiskConfig.hard_disks(n)) for n in (2, 4, 6, 10)
    ]
    for name, disk in points:
        report = run_point(40, disk)
        print(
            f"{name:>16} {report.disk_utilization * 100:>9.1f}% "
            f"{report.io_wait_mean_queue:>10.1f} {report.rejected_ops:>9} "
            f"{'PASS' if report.passed else 'FAIL':>8}"
        )
    print()
    print("The paper: with 2 disks I/O wait grows until the benchmark")
    print("fails; a RAM disk or more disks is equivalent for the study.")


def main() -> None:
    sweep_injection_rate()
    sweep_disks()


if __name__ == "__main__":
    main()
