"""Benchmark: sampling-budget ablation for the correlation study."""

from repro.experiments import exp_methodology
from repro.experiments.common import bench_config


def test_exp_methodology(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_methodology.run(bench_config()), rounds=1, iterations=1
    )
    record("exp_methodology", result)
    budgets = sorted(result.deviation)
    assert result.deviation[budgets[-1]] < result.deviation[budgets[0]]
