"""Benchmark: regenerate Figure 10 (CPI statistical correlation).

The heaviest reproduction: eight counter groups, each measured over its
own stretch of 130 sampling windows, exactly as a real hpmstat campaign
cycles through groups during one long run.
"""

from repro.experiments import fig10_correlation
from repro.experiments.common import bench_config
from repro.hpm.events import Event


def test_fig10_correlation(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig10_correlation.run(bench_config(), windows_per_group=130),
        rounds=1,
        iterations=1,
    )
    record("fig10_correlation", result)
    r = result.report.r_of
    # The decisive poles of the paper's figure.
    assert r(Event.PM_CYC_INST_CMPL) < -0.5
    assert r(Event.PM_INST_FROM_L1) < -0.5
    assert max(r(Event.PM_L1_PREF), r(Event.PM_STREAM_ALLOC)) > 0.2
    assert r(Event.PM_DATA_FROM_MEM) > 0.1
