"""Benchmark: regenerate Figure 5 (CPI, speculation rate, L1 misses)."""

from repro.experiments import fig05_cpi
from repro.experiments.common import bench_config


def test_fig05_cpi(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig05_cpi.run(bench_config(), n_mutator=100, n_gc_events=4),
        rounds=1,
        iterations=1,
    )
    record("fig05_cpi", result)
    assert 2.4 < result.cpi < 3.8
    assert result.idle_cpi < 1.0
