"""Benchmark: resilience under injected faults (Section 7 scope)."""

from repro.experiments import exp_resilience
from repro.experiments.common import bench_config


def test_exp_resilience(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_resilience.run(bench_config()), rounds=1, iterations=1
    )
    record("exp_resilience", result)
    crash = result.scenarios["crash-no-retry"].report
    retried = result.scenarios["crash-retry"].report
    assert retried.successful_ops > crash.successful_ops
    assert result.scenarios["fault-free"].report.availability > 0.999
