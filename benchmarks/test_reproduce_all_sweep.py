"""Benchmark: the full-catalog sweep with memoized runs + parallel fan-out.

Unlike the per-experiment benchmarks this runs at quick scale — it
exercises all 21 catalog entries, so bench scale would dominate the
whole suite's wall clock.  The interesting numbers are in the summary
it persists: per-experiment seconds and the run-cache hit/miss split.
"""

from repro.experiments import reproduce_all
from repro.experiments.common import quick_config


def test_reproduce_all_parallel_sweep(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: reproduce_all.run(quick_config(), jobs=4), rounds=1, iterations=1
    )
    (output_dir / "reproduce_all_sweep.txt").write_text(
        "\n".join(result.summary_lines()) + "\n"
    )
    assert len(result.records) == len(reproduce_all.CATALOG)
    # The whole point of the shared run layer: baseline re-simulations
    # become cache hits.
    assert result.cache_hits > 0
