"""Benchmark: the processor-scaling study (future work, Section 7)."""

from repro.experiments import exp_scaling
from repro.experiments.common import bench_config


def test_exp_scaling(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_scaling.run(bench_config(), hw_windows=30),
        rounds=1,
        iterations=1,
    )
    record("exp_scaling", result)
    assert result.points[16].jops / result.points[4].jops < 4.0
