"""Benchmark: regenerate Figure 4 (profile breakdown, flat profile).

Runs at the paper's full method population (8500 JITed methods, 224
warm) so the <1% hottest-method and 224-for-50% statistics are checked
at their published scale.
"""

from repro.experiments import fig04_profile
from repro.experiments.common import bench_config


def test_fig04_profile(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig04_profile.run(bench_config()), rounds=1, iterations=1
    )
    record("fig04_profile", result)
    assert result.profile.hottest_share < 0.01  # the paper's <1%
    assert 130 <= result.profile.items_for_half <= 320  # paper: 224
