"""Benchmark: regenerate Figure 8 (L1 data cache performance)."""

from repro.experiments import fig08_l1d
from repro.experiments.common import bench_config


def test_fig08_l1d(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig08_l1d.run(bench_config(), n_mutator=100, n_gc_events=4),
        rounds=1,
        iterations=1,
    )
    record("fig08_l1d", result)
    assert result.store_miss_gc < result.store_miss  # paper's GC signature
