"""Benchmark: regenerate Section 4.1's utilization/disk table (IR
sweep, RAM disk vs 2 vs 10 hard disks)."""

from repro.experiments import tab_utilization
from repro.experiments.common import bench_config


def test_tab_utilization(benchmark, record):
    result = benchmark.pedantic(
        lambda: tab_utilization.run(bench_config()), rounds=1, iterations=1
    )
    record("tab_utilization", result)
    assert result.ir47.utilization > 0.95
    assert not result.two_disks.passed
    assert result.ram_disk.passed and result.many_disks.passed
