"""Benchmark: regenerate Figure 9 (data sources after an L1 miss),
including the TPC-W-like and single-MCM topology contrasts."""

from repro.experiments import fig09_sources
from repro.experiments.common import bench_config
from repro.cpu.sources import DataSource


def test_fig09_sources(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig09_sources.run(bench_config(), hw_windows=80),
        rounds=1,
        iterations=1,
    )
    record("fig09_sources", result)
    assert 0.65 < result.shares[DataSource.L2] < 0.85  # paper: ~75%
    assert result.modified_share < 0.01  # "very little"
    assert result.tpcw_modified_share > result.modified_share * 5
