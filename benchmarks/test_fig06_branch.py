"""Benchmark: regenerate Figure 6 (branch prediction)."""

from repro.experiments import fig06_branch
from repro.experiments.common import bench_config


def test_fig06_branch(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig06_branch.run(bench_config(), n_mutator=100, n_gc_events=4),
        rounds=1,
        iterations=1,
    )
    record("fig06_branch", result)
    assert result.branches_per_instr_gc > result.branches_per_instr_mutator
    assert result.cond_mispredict_gc < result.cond_mispredict
