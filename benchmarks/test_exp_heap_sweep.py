"""Benchmark: GC behavior vs heap size (the Blackburn-regime sweep)."""

from repro.experiments import exp_heap_sweep
from repro.experiments.common import bench_config


def test_exp_heap_sweep(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_heap_sweep.run(bench_config()), rounds=1, iterations=1
    )
    record("exp_heap_sweep", result)
    assert result.points[1024].gc_fraction < 0.02
    assert result.points[256].gc_fraction > 0.05
