"""Benchmark: regenerate Figure 7 (TLB/ERAT miss frequencies)."""

from repro.experiments import fig07_tlb
from repro.experiments.common import bench_config


def test_fig07_tlb(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig07_tlb.run(bench_config(), n_mutator=100, n_gc_events=4),
        rounds=1,
        iterations=1,
    )
    record("fig07_tlb", result)
    assert 1.0 / result.derat_per_instr > 100  # paper: >100 instr apart
    assert result.dtlb_gc_ratio < 0.1  # orders fewer during GC
