"""Benchmark-suite plumbing.

Every benchmark regenerates one of the paper's figures or tables at
benchmark scale, times it via pytest-benchmark, prints the rendered
rows, and writes them to ``benchmarks/output/<name>.txt`` so the
reproduction artifacts survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(autouse=True)
def cold_run_cache():
    """Benchmarks time *cold* experiments: drop memoized runs first.

    Experiments share finished simulations through the process-wide
    run cache; without this, whichever benchmark ran first would pay
    for the baseline simulation and every later one would time a
    cache hit.
    """
    from repro.runcache import default_cache

    default_cache().clear()
    yield


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def record(output_dir):
    """Persist + print a rendered figure; fail on broken reproductions."""

    def _record(name: str, result) -> None:
        lines = result.render_lines()
        text = "\n".join(lines)
        (output_dir / f"{name}.txt").write_text(text + "\n")
        print(text)
        off = [r.label for r in result.rows() if r.ok is False]
        # Benchmarks run at full scale: allow at most one noisy row.
        assert len(off) <= 1, f"{name}: rows off the paper's shape: {off}"

    return _record
