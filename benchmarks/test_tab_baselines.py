"""Benchmark: regenerate the Section 5 contrast table (jas2004 vs
SPECjbb2000-like and SPECjvm98-like simple benchmarks)."""

from repro.experiments import tab_baselines
from repro.experiments.common import bench_config


def test_tab_baselines(benchmark, record):
    result = benchmark.pedantic(
        lambda: tab_baselines.run(bench_config(), baseline_duration_s=480.0),
        rounds=1,
        iterations=1,
    )
    record("tab_baselines", result)
    jas = result.contrasts["jas2004"]
    jbb = result.contrasts["jbb2000"]
    assert jas.profile.is_flat
    assert not jbb.profile.is_flat
    assert jbb.gc_percent > jas.gc_percent * 2
