"""Benchmark: the what-if ablation (estimates vs simulation)."""

from repro.experiments import exp_whatif
from repro.experiments.common import bench_config


def test_exp_whatif(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_whatif.run(bench_config(), hw_windows=50),
        rounds=1,
        iterations=1,
    )
    record("exp_whatif", result)
    outcome = result.outcomes["faster-l3"]
    assert outcome.simulated_delta < -0.05
