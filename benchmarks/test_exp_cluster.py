"""Benchmark: single server vs blade cluster (future work, Section 7)."""

from repro.experiments import exp_cluster
from repro.experiments.common import bench_config


def test_exp_cluster(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_cluster.run(bench_config()), rounds=1, iterations=1
    )
    record("exp_cluster", result)
    assert result.single.jops >= result.clusters["equal-cores"].jops * 0.97
