"""Benchmark: regenerate Figure 3 (garbage collection statistics)."""

from repro.experiments import fig03_gc
from repro.experiments.common import bench_config


def test_fig03_gc(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig03_gc.run(bench_config()), rounds=1, iterations=1
    )
    record("fig03_gc", result)
    assert result.summary.collections >= 30  # ~45 in 20 virtual minutes
