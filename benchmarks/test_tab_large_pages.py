"""Benchmark: regenerate Section 4.2.2's large-page ablation (4 KB
everywhere vs heap large pages vs heap+code large pages)."""

from repro.experiments import tab_large_pages
from repro.experiments.common import bench_config


def test_tab_large_pages(benchmark, record):
    result = benchmark.pedantic(
        lambda: tab_large_pages.run(bench_config(), hw_windows=60),
        rounds=1,
        iterations=1,
    )
    record("tab_large_pages", result)
    small = result.variants["small"]
    heap = result.variants["heap"]
    code = result.variants["code"]
    assert heap.dtlb_hit_rate > small.dtlb_hit_rate
    assert heap.itlb_hit_rate > small.itlb_hit_rate
    assert code.itlb_miss_per_instr < heap.itlb_miss_per_instr
