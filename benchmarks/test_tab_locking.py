"""Benchmark: regenerate Section 4.2.4's locking/SYNC table."""

from repro.experiments import tab_locking
from repro.experiments.common import bench_config


def test_tab_locking(benchmark, record):
    result = benchmark.pedantic(
        lambda: tab_locking.run(bench_config(), n_mutator=80, n_gc_events=4),
        rounds=1,
        iterations=1,
    )
    record("tab_locking", result)
    assert 380 < result.instr_per_larx < 950  # paper: ~600
    assert result.sync_srq_user < 0.01  # paper: <1%
    assert 0.03 < result.sync_srq_kernel < 0.12  # paper: ~7%
