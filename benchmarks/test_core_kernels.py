"""Core-model kernel microbenchmarks — the ``BENCH_core_model.json`` feed.

Times the optimized kernels against the pinned pre-optimization
implementations in :mod:`repro.cpu.reference`:

* **window_execution** — full sampling windows through ``CoreModel``
  vs ``ReferenceCoreModel`` (the headline number; the PR's acceptance
  bar is a >= 3x speedup), with the per-window snapshots asserted
  bit-identical so the speedup is provably for the same work;
* **cache_kernel** — the array-backed ``SetAssociativeCache`` vs the
  OrderedDict reference on a mixed hit/miss access trace;
* **counter_kernel** — slot-indexed ``CounterBank`` increments vs the
  enum-dict reference;
* **fig10_campaign** — wall-clock of the Figure 10 per-group
  correlation campaign (the ``reproduce-all --only fig10_correlation``
  workload) on optimized vs reference cores.

Results accumulate into ``BENCH_core_model.json`` at the repo root —
the perf-trajectory artifact CI uploads.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_core_kernels.py -q
"""

from __future__ import annotations

import pathlib
import random
import time

import pytest

from repro.benchio import write_bench_json
from repro.config import JvmConfig, MachineConfig, SamplingConfig
from repro.core.characterization import Characterization
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.phases import (
    PhaseDescriptor,
    gc_mark_profile,
    idle_profile,
    kernel_profile,
)
from repro.cpu.reference import (
    ReferenceCoreModel,
    ReferenceCounterBank,
    ReferenceSetAssociativeCache,
)
from repro.cpu.regions import AddressSpace
from repro.experiments.common import quick_config
from repro.hpm.counters import CounterBank
from repro.hpm.events import EVENT_INDEX, Event
from repro.hpm.groups import default_catalog
from repro.util.rng import RngFactory

#: Everything here is a microbenchmark: excluded from the default
#: tier-1 selection, run explicitly with ``-m bench`` (see
#: ``pyproject.toml`` and the CI ``benchmarks-smoke`` job).
pytestmark = pytest.mark.bench

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_core_model.json"

#: Module-level accumulator; written out by the module-scoped fixture's
#: teardown so a partial run still records what it measured.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def bench_json():
    yield _RESULTS
    if _RESULTS:
        write_bench_json(BENCH_PATH, _RESULTS, kind="core_model_bench")
        print(f"\nwrote {BENCH_PATH}")


def _build_core(model_cls, seed: int = 42):
    machine = MachineConfig()
    space = AddressSpace.build(machine, JvmConfig())
    prof_rng = random.Random(7)
    descriptor = PhaseDescriptor(
        slices=(
            (kernel_profile(prof_rng, space), 0.5),
            (gc_mark_profile(prof_rng, space), 0.3),
            (idle_profile(prof_rng, space), 0.2),
        )
    )
    sampling = SamplingConfig(window_cycles=60000)
    return model_cls(
        machine, space, StaticSchedule(descriptor), sampling, RngFactory(seed)
    )


def test_window_execution_speedup(bench_json):
    """Full windows, optimized vs reference — identical output, >=3x faster."""
    n_windows = 12
    optimized = _build_core(CoreModel)
    reference = _build_core(ReferenceCoreModel)

    t0 = time.perf_counter()
    opt_snaps = [optimized.execute_window(w) for w in range(n_windows)]
    opt_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref_snaps = [reference.execute_window(w) for w in range(n_windows)]
    ref_s = time.perf_counter() - t0

    # The speedup must be for the same work: bit-identical snapshots.
    for w, (opt, ref) in enumerate(zip(opt_snaps, ref_snaps)):
        assert dict(opt.counts) == dict(ref.counts), f"window {w} diverged"

    speedup = ref_s / opt_s
    bench_json["window_execution"] = {
        "windows": n_windows,
        "window_cycles": 60000,
        "optimized_s": round(opt_s, 4),
        "reference_s": round(ref_s, 4),
        "speedup": round(speedup, 2),
    }
    print(f"\nwindow execution: {ref_s:.3f}s -> {opt_s:.3f}s ({speedup:.1f}x)")
    assert speedup >= 3.0, f"window-execution speedup {speedup:.2f}x < 3x"


def test_cache_kernel_speedup(bench_json):
    """Array-backed sets vs OrderedDict sets on a mixed access trace."""
    rng = random.Random(99)
    trace = [rng.randrange(4096) for _ in range(200_000)]

    def drive(cache) -> float:
        t0 = time.perf_counter()
        for block in trace:
            if not cache.lookup(block):
                cache.fill(block)
        return time.perf_counter() - t0

    opt_cache = SetAssociativeCache(128, 2, "lru")
    ref_cache = ReferenceSetAssociativeCache(128, 2, "lru")
    opt_s = drive(opt_cache)
    ref_s = drive(ref_cache)
    assert (opt_cache.hits, opt_cache.misses) == (ref_cache.hits, ref_cache.misses)

    bench_json["cache_kernel"] = {
        "accesses": len(trace),
        "optimized_s": round(opt_s, 4),
        "reference_s": round(ref_s, 4),
        "speedup": round(ref_s / opt_s, 2),
    }
    print(f"\ncache kernel: {ref_s:.3f}s -> {opt_s:.3f}s ({ref_s / opt_s:.1f}x)")
    # The cache kernel alone need not hit 3x (dict ops are C-fast);
    # it must simply not be a regression.
    assert opt_s < ref_s * 1.1


def test_counter_kernel_speedup(bench_json):
    """Slot-indexed increments vs enum-dict adds."""
    n = 300_000
    slot = EVENT_INDEX[Event.PM_LD_REF_L1]

    opt_bank = CounterBank()
    t0 = time.perf_counter()
    data = opt_bank.data
    for _ in range(n):
        data[slot] += 1
    opt_s = time.perf_counter() - t0

    ref_bank = ReferenceCounterBank()
    t0 = time.perf_counter()
    for _ in range(n):
        ref_bank.add(Event.PM_LD_REF_L1)
    ref_s = time.perf_counter() - t0

    assert opt_bank.value(Event.PM_LD_REF_L1) == ref_bank.value(Event.PM_LD_REF_L1)
    bench_json["counter_kernel"] = {
        "increments": n,
        "optimized_s": round(opt_s, 4),
        "reference_s": round(ref_s, 4),
        "speedup": round(ref_s / opt_s, 2),
    }
    print(f"\ncounter kernel: {ref_s:.3f}s -> {opt_s:.3f}s ({ref_s / opt_s:.1f}x)")
    assert opt_s < ref_s


class _ReferenceCharacterization(Characterization):
    """The full pipeline with pre-optimization cores underneath."""

    core_model_cls = ReferenceCoreModel


def _campaign_wallclock(study_cls, config, windows_per_group: int) -> float:
    """Time the serial per-group Figure 10 campaign on ``study_cls`` cores."""
    study = study_cls(config)
    study.result  # pull the workload simulation outside the timing
    t0 = time.perf_counter()
    for group in default_catalog():
        hpm = study.group_hpm(group.name)
        hpm.sample_group(group.name, range(windows_per_group))
    return time.perf_counter() - t0


def test_fig10_campaign_wallclock(bench_json):
    """Wall-clock of the fig10 correlation workload, optimized vs reference."""
    config = quick_config()
    windows_per_group = 20
    opt_s = _campaign_wallclock(Characterization, config, windows_per_group)
    ref_s = _campaign_wallclock(
        _ReferenceCharacterization, config, windows_per_group
    )
    bench_json["fig10_campaign"] = {
        "scale": "quick",
        "windows_per_group": windows_per_group,
        "optimized_s": round(opt_s, 4),
        "reference_s": round(ref_s, 4),
        "speedup": round(ref_s / opt_s, 2),
    }
    print(f"\nfig10 campaign: {ref_s:.3f}s -> {opt_s:.3f}s ({ref_s / opt_s:.1f}x)")
    # The acceptance bar: a measured wall-clock reduction.
    assert opt_s < ref_s
