"""Core-model kernel microbenchmarks — the ``BENCH_core_model.json`` feed.

Times the optimized kernels against the pinned pre-optimization
implementations in :mod:`repro.cpu.reference`:

* **window_execution** — full sampling windows through ``CoreModel``
  vs ``ReferenceCoreModel`` (the headline number; the PR's acceptance
  bar is a >= 3x speedup), with the per-window snapshots asserted
  bit-identical so the speedup is provably for the same work;
* **cache_kernel** — the array-backed ``SetAssociativeCache`` vs the
  OrderedDict reference on a mixed hit/miss access trace;
* **counter_kernel** — slot-indexed ``CounterBank`` increments vs the
  enum-dict reference;
* **fig10_campaign** — wall-clock of the Figure 10 per-group
  correlation campaign (the ``reproduce-all --only fig10_correlation``
  workload) on optimized vs reference cores;
* **snapshot_capture / snapshot_apply / snapshot_dense_load** — the
  ``HardwareSnapshot`` round-trip that the sweep-scale batch planner
  put on the per-lane hot path: every packed lane starts from a
  captured snapshot, and every engine (or lane range) loads its dense
  image; the memoized image is timed against a cold per-load rebuild.

Every timing is **best-of-N** (N = ``REPS`` >= 5) through
:func:`repro.perf.benchsuite.best_of`: each repetition rebuilds the
stateful structures outside the timed region and the full repetition
sample (plus its relative spread) lands in the envelope, so the
recorded ``speedup`` — a ratio of minima — is no longer hostage to
one scheduler hiccup.  Results accumulate into
``BENCH_core_model.json`` at the repo root under the schema-2
envelope — the perf-trajectory artifact CI uploads.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_core_kernels.py -q -s -m bench
"""

from __future__ import annotations

import pathlib
import random

import numpy as np
import pytest

from repro.benchio import write_bench_json
from repro.config import JvmConfig, MachineConfig, SamplingConfig
from repro.core.characterization import Characterization
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core_model import CoreModel, StaticSchedule
from repro.cpu.phases import (
    PhaseDescriptor,
    gc_mark_profile,
    idle_profile,
    kernel_profile,
)
from repro.cpu.reference import (
    ReferenceCoreModel,
    ReferenceCounterBank,
    ReferenceSetAssociativeCache,
)
from repro.cpu.regions import AddressSpace
from repro.cpu.vector import HardwareSnapshot
from repro.experiments.common import quick_config
from repro.hpm.counters import CounterBank
from repro.hpm.events import EVENT_INDEX, Event
from repro.hpm.groups import default_catalog
from repro.perf.benchsuite import best_of
from repro.util.rng import RngFactory

#: Everything here is a microbenchmark: excluded from the default
#: tier-1 selection, run explicitly with ``-m bench`` (see
#: ``pyproject.toml`` and the CI ``benchmarks-smoke`` job).
pytestmark = pytest.mark.bench

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_core_model.json"

#: Best-of-N repetitions per timed side (the schema-2 envelope policy;
#: the perf-gate's Mann-Whitney comparison needs N >= 5).
REPS = 5

#: Module-level accumulator; written out by the module-scoped fixture's
#: teardown so a partial run still records what it measured.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def bench_json():
    yield _RESULTS
    if _RESULTS:
        spread = {
            name: entry["spread"]
            for name, entry in sorted(_RESULTS.items())
            if "spread" in entry
        }
        write_bench_json(
            BENCH_PATH,
            _RESULTS,
            kind="core_model_bench",
            repetitions=REPS,
            spread=spread,
        )
        print(f"\nwrote {BENCH_PATH}")


def _build_core(model_cls, seed: int = 42):
    machine = MachineConfig()
    space = AddressSpace.build(machine, JvmConfig())
    prof_rng = random.Random(7)
    descriptor = PhaseDescriptor(
        slices=(
            (kernel_profile(prof_rng, space), 0.5),
            (gc_mark_profile(prof_rng, space), 0.3),
            (idle_profile(prof_rng, space), 0.2),
        )
    )
    sampling = SamplingConfig(window_cycles=60000)
    return model_cls(
        machine, space, StaticSchedule(descriptor), sampling, RngFactory(seed)
    )


def _versus(entry_name, bench_json, opt, ref, extra):
    """Record one optimized-vs-reference pair (best-of-REPS minima)."""
    opt_s = opt["best_s"]
    ref_s = ref["best_s"]
    entry = dict(extra)
    entry.update(
        {
            "optimized_s": opt_s,
            "reference_s": ref_s,
            "optimized_reps_s": opt["reps_s"],
            "reference_reps_s": ref["reps_s"],
            "spread": opt["spread"],
            "speedup": round(ref_s / opt_s, 2),
        }
    )
    bench_json[entry_name] = entry
    print(
        f"\n{entry_name}: {ref_s:.3f}s -> {opt_s:.3f}s "
        f"({ref_s / opt_s:.1f}x, best of {REPS})"
    )
    return ref_s / opt_s


def test_window_execution_speedup(bench_json):
    """Full windows, optimized vs reference — identical output, >=3x faster."""
    n_windows = 12

    # The speedup must be for the same work: bit-identical snapshots
    # (checked on one untimed pass; the timed repetitions rebuild the
    # cores identically from the same seeds).
    optimized = _build_core(CoreModel)
    reference = _build_core(ReferenceCoreModel)
    opt_snaps = [optimized.execute_window(w) for w in range(n_windows)]
    ref_snaps = [reference.execute_window(w) for w in range(n_windows)]
    for w, (opt, ref) in enumerate(zip(opt_snaps, ref_snaps)):
        assert dict(opt.counts) == dict(ref.counts), f"window {w} diverged"

    def body(core):
        for w in range(n_windows):
            core.execute_window(w)

    opt = best_of(lambda: _build_core(CoreModel), body, REPS)
    ref = best_of(lambda: _build_core(ReferenceCoreModel), body, REPS)
    speedup = _versus(
        "window_execution",
        bench_json,
        opt,
        ref,
        {"windows": n_windows, "window_cycles": 60000},
    )
    assert speedup >= 3.0, f"window-execution speedup {speedup:.2f}x < 3x"


def test_cache_kernel_speedup(bench_json):
    """Array-backed sets vs OrderedDict sets on a mixed access trace."""
    rng = random.Random(99)
    trace = [rng.randrange(4096) for _ in range(200_000)]

    def body(cache):
        for block in trace:
            if not cache.lookup(block):
                cache.fill(block)

    opt_cache = SetAssociativeCache(128, 2, "lru")
    ref_cache = ReferenceSetAssociativeCache(128, 2, "lru")
    body(opt_cache)
    body(ref_cache)
    assert (opt_cache.hits, opt_cache.misses) == (ref_cache.hits, ref_cache.misses)

    opt = best_of(lambda: SetAssociativeCache(128, 2, "lru"), body, REPS)
    ref = best_of(lambda: ReferenceSetAssociativeCache(128, 2, "lru"), body, REPS)
    _versus(
        "cache_kernel", bench_json, opt, ref, {"accesses": len(trace)}
    )
    # The cache kernel alone need not hit 3x (dict ops are C-fast);
    # it must simply not be a regression.
    assert opt["best_s"] < ref["best_s"] * 1.1


def test_counter_kernel_speedup(bench_json):
    """Slot-indexed increments vs enum-dict adds."""
    n = 300_000
    slot = EVENT_INDEX[Event.PM_LD_REF_L1]

    def opt_body(bank):
        data = bank.data
        for _ in range(n):
            data[slot] += 1

    def ref_body(bank):
        for _ in range(n):
            bank.add(Event.PM_LD_REF_L1)

    check_opt, check_ref = CounterBank(), ReferenceCounterBank()
    opt_body(check_opt)
    ref_body(check_ref)
    assert check_opt.value(Event.PM_LD_REF_L1) == check_ref.value(
        Event.PM_LD_REF_L1
    )

    opt = best_of(CounterBank, opt_body, REPS)
    ref = best_of(ReferenceCounterBank, ref_body, REPS)
    _versus("counter_kernel", bench_json, opt, ref, {"increments": n})
    assert opt["best_s"] < ref["best_s"]


def _warmed_core(n_windows: int = 8):
    """A core with real persistent state to snapshot (not a cold boot)."""
    core = _build_core(CoreModel)
    for w in range(n_windows):
        core.execute_window(w)
    return core


def test_snapshot_capture_apply(bench_json):
    """``HardwareSnapshot`` capture/apply — the per-lane sweep hot path.

    The batch planner captures one snapshot per campaign and applies it
    (via the dense image) into every lane of a packed engine, so these
    two operations now run once per lane of every sweep instead of only
    on the oracle path.  No reference implementation exists — the entry
    records absolute per-op cost so the trajectory catches creep.
    """
    n_windows = 8
    n_ops = 100

    # Correctness, untimed: capture -> apply to a fresh core -> recapture
    # round-trips the complete persistent state.
    snap = HardwareSnapshot.capture(_warmed_core(n_windows))
    fresh = _build_core(CoreModel)
    snap.apply(fresh)
    assert HardwareSnapshot.capture(fresh).state == snap.state

    cap = best_of(
        lambda: _warmed_core(n_windows),
        lambda core: [HardwareSnapshot.capture(core) for _ in range(n_ops)],
        REPS,
    )
    app = best_of(
        lambda: _build_core(CoreModel),
        lambda core: [snap.apply(core) for _ in range(n_ops)],
        REPS,
    )
    for name, res in (("snapshot_capture", cap), ("snapshot_apply", app)):
        bench_json[name] = {
            "best_s": res["best_s"],
            "reps_s": res["reps_s"],
            "spread": res["spread"],
            "ops": n_ops,
            "warm_windows": n_windows,
        }
        print(
            f"\n{name}: {res['best_s'] / n_ops * 1e6:.1f}us/op "
            f"(best of {REPS})"
        )
    assert cap["best_s"] > 0 and app["best_s"] > 0


def test_snapshot_dense_load_memoization(bench_json):
    """Memoized dense snapshot images vs a cold python walk per load.

    ``VectorBatchEngine._load_snapshot`` reads the snapshot through
    ``dense_ways``/``dense_table``; the memo means a snapshot shared by
    many engines (or many lane ranges of one packed engine) walks its
    python way lists once.  The reference side rebuilds a fresh
    ``HardwareSnapshot`` wrapper per load, defeating the memo.
    """
    core = _warmed_core(8)
    snap = HardwareSnapshot.capture(core)
    t = core.translation
    geoms = [
        ("l1i", core.memory.l1i),
        ("l1d", core.memory.l1d),
        ("ierat", t.ierat.cache),
        ("derat", t.derat.cache),
        ("tlb", t.tlb.cache),
    ]
    n_loads = 200

    def load_once(s):
        for name, cache in geoms:
            s.dense_ways(name, cache.n_sets, cache.associativity)
        s.dense_table("dir", np.int8)
        s.dense_table("tgt", np.int64)

    # The memoized image must be identical to a cold rebuild.
    cold = HardwareSnapshot(snap.state)
    for name, cache in geoms:
        warm_img = snap.dense_ways(name, cache.n_sets, cache.associativity)
        cold_img = cold.dense_ways(name, cache.n_sets, cache.associativity)
        assert np.array_equal(warm_img[0], cold_img[0])
        assert np.array_equal(warm_img[1], cold_img[1])

    def warm_body(s):
        for _ in range(n_loads):
            load_once(s)

    def cold_body(state):
        for _ in range(n_loads):
            load_once(HardwareSnapshot(state))

    opt = best_of(lambda: HardwareSnapshot(snap.state), warm_body, REPS)
    ref = best_of(lambda: snap.state, cold_body, REPS)
    _versus("snapshot_dense_load", bench_json, opt, ref, {"loads": n_loads})
    assert opt["best_s"] < ref["best_s"]


class _ReferenceCharacterization(Characterization):
    """The full pipeline with pre-optimization cores underneath."""

    core_model_cls = ReferenceCoreModel


def _campaign_setup(study_cls, config):
    def setup():
        study = study_cls(config)
        study.result  # pull the workload simulation outside the timing
        return study

    return setup


def _campaign_body(windows_per_group):
    def body(study):
        for group in default_catalog():
            hpm = study.group_hpm(group.name)
            hpm.sample_group(group.name, range(windows_per_group))

    return body


def test_fig10_campaign_wallclock(bench_json):
    """Wall-clock of the fig10 correlation workload, optimized vs reference."""
    config = quick_config()
    windows_per_group = 20
    body = _campaign_body(windows_per_group)
    opt = best_of(_campaign_setup(Characterization, config), body, REPS)
    ref = best_of(
        _campaign_setup(_ReferenceCharacterization, config), body, REPS
    )
    _versus(
        "fig10_campaign",
        bench_json,
        opt,
        ref,
        {"scale": "quick", "windows_per_group": windows_per_group},
    )
    # The acceptance bar: a measured wall-clock reduction.
    assert opt["best_s"] < ref["best_s"]
