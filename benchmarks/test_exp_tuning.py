"""Benchmark: the Section 3.3 tuning walk."""

from repro.experiments import exp_tuning
from repro.experiments.common import bench_config


def test_exp_tuning(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_tuning.run(bench_config()), rounds=1, iterations=1
    )
    record("exp_tuning", result)
    assert result.steps["+ramdisk"].report.passed
    assert not result.steps["untuned"].report.passed
