"""Benchmark: the JIT warm-up dynamic (Section 4.1.2's rationale)."""

from repro.experiments import exp_warmup
from repro.experiments.common import bench_config


def test_exp_warmup(benchmark, record):
    result = benchmark.pedantic(
        lambda: exp_warmup.run(bench_config(), hw_windows=40),
        rounds=1,
        iterations=1,
    )
    record("exp_warmup", result)
    assert result.early.cpi > result.late.cpi
    assert result.compiled_late > 0.95
