"""Benchmark: regenerate Figure 2 (throughput by transaction type)."""

from repro.experiments import fig02_throughput
from repro.experiments.common import bench_config


def test_fig02_throughput(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig02_throughput.run(bench_config()), rounds=1, iterations=1
    )
    record("fig02_throughput", result)
    assert result.jops_per_ir > 1.3
